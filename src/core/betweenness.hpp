#pragma once

/// \file betweenness.hpp
/// Betweenness centrality — GraphCT's flagship kernel.
///
/// BC(v) = sum over s != v != t of sigma_st(v) / sigma_st, the fraction of
/// shortest paths passing through v (§II-A). Exact evaluation runs Brandes'
/// dependency accumulation from every source; the massive-graph mode samples
/// a random subset of sources ("Approximating this metric by randomly
/// sampling a small number of source vertices improves the running times",
/// §II-A, after Bader et al. 2007). The paper's headline numbers use 256
/// sampled sources.
///
/// Parallel decomposition mirrors §II-B:
///  * coarse — independent sources run concurrently, each with O(m+n)
///    private storage, per-thread score buffers reduced at the end;
///  * fine — one source at a time, with the BFS, path-count, and dependency
///    sweeps parallel across each level and atomic fetch-and-add the only
///    synchronization. (On one socket, coarse wins when sources are many;
///    fine is the XMT-style mode and the ablation point.)

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "storage/graph_view.hpp"

namespace graphct {

/// How per-source contributions reach the global score array.
enum class BcParallelism {
  kCoarse,  ///< parallel over sources, per-thread buffers
  kFine,    ///< sources serial, level-parallel sweeps with atomics
  kAuto,    ///< memory-bounded coarse: buffer team sized to the score
            ///< memory budget, sources in batches with a parallel tree
            ///< reduction per batch; falls back to kFine when even two
            ///< buffers exceed the budget
};

/// Which forward-sweep engine accumulate_source runs.
enum class BcForwardEngine {
  kAuto,     ///< hybrid on undirected graphs, top-down on directed
  kTopDown,  ///< classic push: BFS + sigma fetch-and-add (exact baseline)
  kHybrid,   ///< fused direction-optimizing sweep (bc_forward_sweep);
             ///< undirected only — the bottom-up pull reads out-neighbors
             ///< as in-neighbors
};

/// How sampled sources are chosen.
enum class BcSampling {
  kUniform,         ///< uniform over all vertices (the paper's scheme)
  kComponentAware,  ///< stratified by component size; addresses the paper's
                    ///< §V conjecture that unguided sampling misses
                    ///< components in disconnected graphs
};

/// Options for betweenness_centrality().
struct BetweennessOptions {
  /// Number of sampled source vertices; kNoVertex (or >= n) = exact BC over
  /// all sources. The paper's massive runs use 256.
  std::int64_t num_sources = kNoVertex;

  /// Alternative sampling spec: fraction of vertices in (0, 1]. Ignored when
  /// negative; overrides num_sources when set (the paper's Figs. 4/5 sample
  /// 10%, 25%, 50% of nodes).
  double sample_fraction = -1.0;

  std::uint64_t seed = 1;
  BcParallelism parallelism = BcParallelism::kCoarse;
  BcSampling sampling = BcSampling::kUniform;

  /// Forward-sweep engine. kAuto picks the hybrid sweep whenever the graph
  /// is undirected; kTopDown forces the push baseline (the ablation point —
  /// scores are bit-identical between the two, see bc_forward_sweep).
  BcForwardEngine forward = BcForwardEngine::kAuto;

  /// Hybrid switch thresholds, forwarded to BcSweepOptions. Negative =
  /// keep the sweep defaults (alpha 28, beta 24).
  double sweep_alpha = -1.0;
  double sweep_beta = -1.0;

  /// Scale sampled scores by n/num_sources so magnitudes estimate exact BC
  /// (rankings are unaffected; off by default to match GraphCT's raw sums).
  bool rescale = false;

  /// kAuto only: cap on the total bytes of per-thread score buffers the
  /// coarse engine may hold live at once (default 1 GiB). The buffer team is
  /// sized to fit (budget / (n * 8) buffers, at most one per thread) and
  /// sources run in batches of 8 x team so each tree reduction amortizes
  /// over several sources. When the budget cannot fit two buffers the engine
  /// falls back to fine-grained mode, whose score memory is O(1) buffers.
  std::uint64_t score_memory_budget_bytes = std::uint64_t{1} << 30;
};

/// Result of a betweenness run.
struct BetweennessResult {
  std::vector<double> score;       ///< per-vertex centrality
  std::int64_t sources_used = 0;   ///< how many sources were accumulated
  double seconds = 0.0;            ///< kernel wall time (excludes setup)

  /// Mode the engine actually ran (kAuto resolves to kCoarse or kFine).
  BcParallelism parallelism_used = BcParallelism::kCoarse;
  std::int64_t batches = 0;             ///< coarse source batches (0 = fine)
  std::uint64_t peak_buffer_bytes = 0;  ///< high-water score-buffer memory

  /// Forward engine actually run (kAuto resolves per graph direction).
  BcForwardEngine forward_used = BcForwardEngine::kTopDown;
};

/// Execution plan the coarse/auto engine derives from the vertex count,
/// source count, thread count, and memory budget — exposed so tests can
/// assert the budget arithmetic without running a kernel.
struct BcPlan {
  BcParallelism mode = BcParallelism::kCoarse;  ///< kCoarse or kFine
  int team = 1;                    ///< concurrent score buffers (coarse)
  std::int64_t batch_sources = 0;  ///< sources per batch (coarse)
  std::int64_t num_batches = 0;
  std::uint64_t buffer_bytes = 0;  ///< team * n * sizeof(double)

  /// Forward engine (kTopDown or kHybrid, never kAuto after planning).
  BcForwardEngine forward = BcForwardEngine::kTopDown;
};

/// Resolve BetweennessOptions::parallelism against a graph size and thread
/// count. kCoarse and kFine pass through (kCoarse = one batch, one buffer
/// per thread, budget ignored); kAuto applies the score memory budget.
/// BcForwardEngine::kAuto resolves to kHybrid on undirected graphs and
/// kTopDown on directed ones (no in-neighbor CSR to pull from).
BcPlan plan_betweenness(vid n, std::int64_t num_sources, int threads,
                        const BetweennessOptions& opts, bool directed = false);

/// Compute (approximate) betweenness centrality of an undirected graph.
/// Self-loops never lie on shortest paths and are ignored.
BetweennessResult betweenness_centrality(const GraphView& g,
                                         const BetweennessOptions& opts = {});

/// Directed betweenness centrality: shortest paths follow arc direction
/// (the paper's §I-A "directed model [that] could model directed flow ...
/// of future interest"). Pairs (s, t) are ordered, counted once each.
/// Component-aware sampling falls back to uniform (weak components do not
/// bound directed reachability).
BetweennessResult directed_betweenness_centrality(
    const GraphView& g, const BetweennessOptions& opts = {});

/// Pick the BC source set for the given options — exposed for tests and for
/// harnesses that must reuse one sample across kernels.
std::vector<vid> choose_sources(const GraphView& g,
                                const BetweennessOptions& opts);

}  // namespace graphct
