#include "core/kbetweenness.hpp"

#include <omp.h>

#include <algorithm>

#include "algs/bfs.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphct {

namespace {

// Level size below which the slack-indexed sweeps skip the parallel-for:
// a region fork per (level x slack) pair dwarfs the work on the short
// levels that dominate high-diameter searches.
constexpr eid kKbcLevelSerialBelow = 512;

/// Scratch for one source, sized (k+1) x n for the slack-indexed tables.
struct KbcWorkspace {
  std::int64_t k;
  vid n;
  std::vector<double> sigma;  // sigma[j*n + v]
  std::vector<double> rho;    // rho[m*n + v]
  std::vector<double> total;  // T(v)
  BfsResult bfs_buffer;       // reused so the hot loop never allocates

  KbcWorkspace(std::int64_t k_, vid n_)
      : k(k_),
        n(n_),
        sigma(static_cast<std::size_t>((k_ + 1) * n_)),
        rho(static_cast<std::size_t>((k_ + 1) * n_)),
        total(static_cast<std::size_t>(n_)) {}

  double& s(std::int64_t j, vid v) {
    return sigma[static_cast<std::size_t>(j * n + v)];
  }
  double& r(std::int64_t m, vid v) {
    return rho[static_cast<std::size_t>(m * n + v)];
  }
};

/// Accumulate one source's k-BC dependencies into `score` (plain adds; the
/// caller arranges exclusive buffers or serial source order).
void accumulate_source_kbc(const GraphView& g, vid s, KbcWorkspace& ws,
                           std::vector<double>& score) {
  const std::int64_t k = ws.k;
  BfsOptions bopts;
  // Direction-optimizing BFS (kbc is undirected-only, so bottom-up sweeps
  // are always legal) with deterministic bitmap levels: compaction emits
  // each level ascending by construction, so the old post-sort is gone and
  // every storage backend sees the identical order. The k-BC sums
  // themselves are per-vertex pulls in adjacency order, so scores are
  // bit-identical to the top-down engine this replaces.
  bopts.strategy = BfsStrategy::kDirectionOptimizing;
  bopts.deterministic_order = true;
  bopts.compute_parents = false;
  BfsResult& b = ws.bfs_buffer;
  bfs_into(g, s, bopts, b);
  const auto& dist = b.distance;
  const vid reached = b.num_reached();
  const std::int64_t num_levels =
      static_cast<std::int64_t>(b.level_offsets.size()) - 1;

  // Clear only the entries of reached vertices.
  for (eid i = 0; i < reached; ++i) {
    const vid v = b.order[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j <= k; ++j) {
      ws.s(j, v) = 0.0;
      ws.r(j, v) = 0.0;
    }
    ws.total[static_cast<std::size_t>(v)] = 0.0;
  }

  // ---- Forward pass: sigma_j by ascending slack, ascending level. ----
  ws.s(0, s) = 1.0;
  for (std::int64_t j = 0; j <= k; ++j) {
    for (std::int64_t d = 0; d < num_levels; ++d) {
      const eid lo = b.level_offsets[static_cast<std::size_t>(d)];
      const eid hi = b.level_offsets[static_cast<std::size_t>(d) + 1];
#pragma omp parallel for schedule(dynamic, 64) if (hi - lo >= kKbcLevelSerialBelow)
      for (eid i = lo; i < hi; ++i) {
        const vid v = b.order[static_cast<std::size_t>(i)];
        double acc = (j == 0 && v == s) ? 1.0 : 0.0;
        for (vid u : g.neighbors(v)) {
          if (dist[static_cast<std::size_t>(u)] == kNoVertex) continue;
          // slack of the prefix ending at u: j' = j - 1 + d(v) - d(u)
          const std::int64_t jp = j - 1 + d - dist[static_cast<std::size_t>(u)];
          if (jp < 0 || jp > k) continue;
          // Prefix values at (jp == j) come from the previous level of this
          // same sweep (forward edges only: d(u) == d-1); jp < j values are
          // finalized by earlier sweeps. Both are complete when read.
          acc += ws.s(jp, u);
        }
        ws.s(j, v) = acc;
      }
    }
  }

  // T(v) = total walks within slack k ending at v.
  for (eid i = 0; i < reached; ++i) {
    const vid v = b.order[static_cast<std::size_t>(i)];
    double t = 0.0;
    for (std::int64_t j = 0; j <= k; ++j) t += ws.s(j, v);
    ws.total[static_cast<std::size_t>(v)] = t;
  }

  // ---- Backward pass: rho_m by ascending m, descending level. ----
  for (std::int64_t m = 0; m <= k; ++m) {
    for (std::int64_t d = num_levels - 1; d >= 0; --d) {
      const eid lo = b.level_offsets[static_cast<std::size_t>(d)];
      const eid hi = b.level_offsets[static_cast<std::size_t>(d) + 1];
#pragma omp parallel for schedule(dynamic, 64) if (hi - lo >= kKbcLevelSerialBelow)
      for (eid i = lo; i < hi; ++i) {
        const vid v = b.order[static_cast<std::size_t>(i)];
        double acc = (m == 0 && v != s)
                         ? 1.0 / ws.total[static_cast<std::size_t>(v)]
                         : 0.0;
        for (vid u : g.neighbors(v)) {
          if (dist[static_cast<std::size_t>(u)] == kNoVertex) continue;
          // suffix slack consumed stepping v -> u: m' = m - 1 + d(u) - d(v)
          const std::int64_t mp = m - 1 + dist[static_cast<std::size_t>(u)] - d;
          if (mp < 0 || mp > k) continue;
          acc += ws.r(mp, u);
        }
        ws.r(m, v) = acc;
      }
    }
  }

  // ---- Combine: delta(v) = sum_j sigma_j(v) * S_{k-j}(v) - 1. ----
  for (eid i = 0; i < reached; ++i) {
    const vid v = b.order[static_cast<std::size_t>(i)];
    if (v == s) continue;
    // Prefix sums of rho over m, reused across j (S_c = sum_{m<=c} rho_m).
    double delta = 0.0;
    for (std::int64_t j = 0; j <= k; ++j) {
      double S = 0.0;
      for (std::int64_t m = 0; m <= k - j; ++m) S += ws.r(m, v);
      delta += ws.s(j, v) * S;
    }
    delta -= 1.0;
    score[static_cast<std::size_t>(v)] += delta;
  }
}

}  // namespace

KBetweennessResult k_betweenness_centrality(const GraphView& g,
                                            const KBetweennessOptions& opts) {
  GCT_CHECK(!g.directed(), "k_betweenness_centrality: graph must be undirected");
  GCT_CHECK(opts.k >= 0, "k_betweenness_centrality: k must be >= 0");
  const vid n = g.num_vertices();
  KBetweennessResult result;
  result.score.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;
  obs::KernelScope scope("kbc");

  std::vector<vid> sources;
  {
    GCT_SPAN("kbc.sources");
    if (opts.num_sources == kNoVertex || opts.num_sources >= n) {
      sources.resize(static_cast<std::size_t>(n));
      for (vid v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
    } else {
      GCT_CHECK(opts.num_sources > 0,
                "k_betweenness_centrality: num_sources must be positive");
      Rng rng(opts.seed);
      sources = rng.sample_without_replacement(n, opts.num_sources);
    }
  }
  result.sources_used = static_cast<std::int64_t>(sources.size());

  // Memory-bounded team (same engine as BcParallelism::kAuto): one slot
  // costs a score buffer plus the two (k+1) x n slack tables and the total
  // array, so size the team to the budget with a floor of one worker.
  const std::uint64_t slot_bytes =
      static_cast<std::uint64_t>(2 * (opts.k + 1) + 2) *
      static_cast<std::uint64_t>(n) * sizeof(double);
  const int nt = num_threads();
  int team = nt;
  if (slot_bytes > 0) {
    const auto affordable = static_cast<std::int64_t>(
        opts.score_memory_budget_bytes / slot_bytes);
    team = static_cast<int>(std::clamp<std::int64_t>(affordable, 1, nt));
  }
  const auto num_sources = static_cast<std::int64_t>(sources.size());
  const std::int64_t batch_sources =
      std::min<std::int64_t>(num_sources, static_cast<std::int64_t>(team) * 8);
  result.peak_buffer_bytes = static_cast<std::uint64_t>(team) * slot_bytes;

  std::vector<std::vector<double>> buffers(
      static_cast<std::size_t>(team),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  std::vector<KbcWorkspace> workspaces;
  workspaces.reserve(static_cast<std::size_t>(team));
  for (int t = 0; t < team; ++t) workspaces.emplace_back(opts.k, n);

  for (std::int64_t b0 = 0; b0 < num_sources; b0 += batch_sources) {
    const std::int64_t b1 = std::min(num_sources, b0 + batch_sources);
    ++result.batches;
    {
      GCT_SPAN("kbc.accumulate");
      {
        obs::SuspendCollection pause;  // accounted in bulk below
#pragma omp parallel num_threads(team)
        {
          const int t = omp_get_thread_num();
#pragma omp for schedule(dynamic, 1)
          for (std::int64_t i = b0; i < b1; ++i) {
            accumulate_source_kbc(g, sources[static_cast<std::size_t>(i)],
                                  workspaces[static_cast<std::size_t>(t)],
                                  buffers[static_cast<std::size_t>(t)]);
          }
        }
      }
      // Each source sweeps the adjacency once per slack value 0..k, forward
      // and backward (BFS-equivalent TEPS convention for sampled kernels).
      obs::add_work((b1 - b0) * static_cast<std::int64_t>(n),
                    (b1 - b0) * 2 * (opts.k + 1) * g.num_adjacency_entries());
    }
    GCT_SPAN("kbc.reduce_tree");
    tree_reduce_buffers(
        buffers, std::span<double>(result.score.data(), result.score.size()),
        /*clear_buffers=*/b1 < num_sources);
  }
  result.seconds = scope.seconds();
  return result;
}

}  // namespace graphct
