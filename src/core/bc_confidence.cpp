#include "core/bc_confidence.hpp"

#include <algorithm>
#include <cmath>

#include "algs/ranking.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace graphct {

BcConfidenceResult bc_confidence(const CsrGraph& g,
                                 const BcConfidenceOptions& opts) {
  GCT_CHECK(opts.replicates >= 2, "bc_confidence: need >= 2 replicates");
  GCT_CHECK(opts.num_sources >= 1, "bc_confidence: need >= 1 source");
  const vid n = g.num_vertices();

  BcConfidenceResult r;
  r.replicates = opts.replicates;
  r.mean.assign(static_cast<std::size_t>(n), 0.0);
  r.half_width.assign(static_cast<std::size_t>(n), 0.0);
  r.top_membership.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return r;

  Rng seeder(opts.seed);
  std::vector<std::vector<double>> replicate_scores;
  std::vector<std::vector<vid>> replicate_tops;
  replicate_scores.reserve(static_cast<std::size_t>(opts.replicates));

  for (std::int64_t rep = 0; rep < opts.replicates; ++rep) {
    BetweennessOptions o;
    o.num_sources = std::min<std::int64_t>(opts.num_sources, n);
    o.seed = seeder.next_u64();
    o.sampling = opts.sampling;
    o.rescale = true;  // unbiased magnitude across replicates
    auto res = betweenness_centrality(g, o);
    r.sources_per_replicate = res.sources_used;

    const auto top = top_percent(
        std::span<const double>(res.score.data(), res.score.size()),
        opts.top_percent);
    for (vid v : top) {
      r.top_membership[static_cast<std::size_t>(v)] += 1.0;
    }
    replicate_tops.push_back(top);
    replicate_scores.push_back(std::move(res.score));
  }

  const double inv_r = 1.0 / static_cast<double>(opts.replicates);
  for (auto& m : r.top_membership) m *= inv_r;

  // Per-vertex mean and t-interval across replicates.
  std::vector<double> sample(static_cast<std::size_t>(opts.replicates));
#pragma omp parallel for schedule(static) firstprivate(sample)
  for (vid v = 0; v < n; ++v) {
    for (std::int64_t rep = 0; rep < opts.replicates; ++rep) {
      sample[static_cast<std::size_t>(rep)] =
          replicate_scores[static_cast<std::size_t>(rep)]
                          [static_cast<std::size_t>(v)];
    }
    const Summary s =
        summarize(std::span<const double>(sample.data(), sample.size()));
    r.mean[static_cast<std::size_t>(v)] = s.mean;
    r.half_width[static_cast<std::size_t>(v)] =
        confidence_half_width(s, opts.level);
  }

  // Pairwise top-list overlap — the stability of the analyst-facing output.
  double overlap_sum = 0.0;
  std::int64_t pairs = 0;
  for (std::size_t a = 0; a < replicate_tops.size(); ++a) {
    for (std::size_t b = a + 1; b < replicate_tops.size(); ++b) {
      const auto k = static_cast<double>(replicate_tops[a].size());
      if (k == 0) continue;
      overlap_sum += static_cast<double>(set_intersection_size(
                         replicate_tops[a], replicate_tops[b])) /
                     k;
      ++pairs;
    }
  }
  r.top_list_stability = pairs > 0 ? overlap_sum / static_cast<double>(pairs)
                                   : 1.0;
  return r;
}

}  // namespace graphct
