#include "core/toolkit.hpp"

#include "algs/degree.hpp"
#include "graph/builder.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/transforms.hpp"
#include "util/error.hpp"

namespace graphct {

Toolkit::Toolkit(CsrGraph graph, const ToolkitOptions& opts)
    : graph_(std::move(graph)), opts_(opts) {
  if (opts_.estimate_diameter_on_load) {
    DiameterOptions d;
    d.num_samples = opts_.diameter_samples;
    d.multiplier = opts_.diameter_multiplier;
    d.seed = opts_.seed;
    diameter_ = graphct::estimate_diameter(graph_, d);
  }
}

Toolkit Toolkit::load_dimacs(const std::string& path,
                             const ToolkitOptions& opts) {
  EdgeList el = read_dimacs(path);
  BuildOptions b;  // undirected, deduplicated — GraphCT's default view
  return Toolkit(build_csr(el, b), opts);
}

Toolkit Toolkit::load_binary(const std::string& path,
                             const ToolkitOptions& opts) {
  return Toolkit(read_binary(path), opts);
}

const DiameterEstimate& Toolkit::diameter() {
  if (!diameter_) {
    return estimate_diameter(opts_.diameter_samples, opts_.diameter_multiplier);
  }
  return *diameter_;
}

const DiameterEstimate& Toolkit::estimate_diameter(std::int64_t num_samples,
                                                   std::int64_t multiplier) {
  DiameterOptions d;
  d.num_samples = num_samples;
  d.multiplier = multiplier;
  d.seed = opts_.seed;
  diameter_ = graphct::estimate_diameter(graph_, d);
  return *diameter_;
}

const std::vector<vid>& Toolkit::components() {
  if (!components_) components_ = weak_components(graph_);
  return *components_;
}

const ComponentStats& Toolkit::components_stats() {
  if (!component_stats_) component_stats_ = component_stats(components());
  return *component_stats_;
}

const Summary& Toolkit::degree_stats() {
  if (!degree_stats_) degree_stats_ = degree_summary(graph_);
  return *degree_stats_;
}

const LogHistogram& Toolkit::degree_histogram() {
  if (!degree_histogram_) degree_histogram_ = graphct::degree_histogram(graph_);
  return *degree_histogram_;
}

const ClusteringResult& Toolkit::clustering() {
  if (!clustering_) clustering_ = clustering_coefficients(graph_);
  return *clustering_;
}

const std::vector<std::int64_t>& Toolkit::core_numbers() {
  if (!core_numbers_) core_numbers_ = graphct::core_numbers(graph_);
  return *core_numbers_;
}

BetweennessResult Toolkit::betweenness(const BetweennessOptions& opts) {
  return betweenness_centrality(graph_, opts);
}

KBetweennessResult Toolkit::k_betweenness(const KBetweennessOptions& opts) {
  return k_betweenness_centrality(graph_, opts);
}

PageRankResult Toolkit::pagerank(const PageRankOptions& opts) {
  return graphct::pagerank(graph_, opts);
}

ClosenessResult Toolkit::closeness(const ClosenessOptions& opts) {
  return closeness_centrality(graph_, opts);
}

const CommunityResult& Toolkit::communities() {
  if (!communities_) {
    LabelPropagationOptions o;
    o.seed = opts_.seed;
    communities_ = label_propagation(graph_, o);
  }
  return *communities_;
}

double Toolkit::community_modularity() {
  const auto& c = communities();
  return modularity(graph_,
                    std::span<const vid>(c.labels.data(), c.labels.size()));
}

Toolkit Toolkit::extract_component(std::int64_t i) {
  const auto& stats = components_stats();
  GCT_CHECK(i >= 0 && i < stats.num_components,
            "extract_component: index out of range");
  Subgraph sub = extract_by_label(graph_, components(),
                                  stats.sizes[static_cast<std::size_t>(i)].first);
  ToolkitOptions opts = opts_;
  return Toolkit(std::move(sub.graph), opts);
}

void Toolkit::invalidate() {
  diameter_.reset();
  components_.reset();
  component_stats_.reset();
  degree_stats_.reset();
  degree_histogram_.reset();
  clustering_.reset();
  core_numbers_.reset();
  communities_.reset();
}

}  // namespace graphct
