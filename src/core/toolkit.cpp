#include "core/toolkit.hpp"

#include "algs/bfs.hpp"
#include "algs/degree.hpp"
#include "dist/coordinator.hpp"
#include "graph/builder.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/transforms.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace graphct {

namespace {

std::string diameter_key(std::int64_t samples, std::int64_t multiplier,
                         std::uint64_t seed) {
  return "diameter|samples=" + std::to_string(samples) +
         "|mult=" + std::to_string(multiplier) +
         "|seed=" + std::to_string(seed);
}

/// Byte estimators for struct-of-vector kernel results, so the cache's
/// budget accounting sees the heap behind them (the default estimator
/// only handles bare vectors).
template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

std::size_t bytes_of(const ComponentStats& s) {
  return sizeof(s) + vec_bytes(s.sizes);
}
std::size_t bytes_of(const ClusteringResult& c) {
  return sizeof(c) + vec_bytes(c.triangles) + vec_bytes(c.coefficient);
}
std::size_t bytes_of(const BetweennessResult& b) {
  return sizeof(b) + vec_bytes(b.score);
}
std::size_t bytes_of(const KBetweennessResult& b) {
  return sizeof(b) + vec_bytes(b.score);
}
std::size_t bytes_of(const PageRankResult& p) {
  return sizeof(p) + vec_bytes(p.score);
}
std::size_t bytes_of(const ClosenessResult& c) {
  return sizeof(c) + vec_bytes(c.score);
}
std::size_t bytes_of(const CommunityResult& c) {
  return sizeof(c) + vec_bytes(c.labels);
}

/// Adapter passing the overload set above as a cache size estimator.
struct StructBytes {
  template <typename T>
  std::size_t operator()(const T& v) const {
    return bytes_of(v);
  }
};

std::string bc_key(const char* kernel, const BetweennessOptions& o) {
  return std::string(kernel) + "|sources=" + std::to_string(o.num_sources) +
         "|frac=" + std::to_string(o.sample_fraction) +
         "|seed=" + std::to_string(o.seed) +
         "|par=" + std::to_string(static_cast<int>(o.parallelism)) +
         "|samp=" + std::to_string(static_cast<int>(o.sampling)) +
         "|rescale=" + std::to_string(o.rescale) +
         "|budget=" + std::to_string(o.score_memory_budget_bytes);
}

}  // namespace

Toolkit::Toolkit(CsrGraph graph, const ToolkitOptions& opts)
    : graph_(std::move(graph)),
      opts_(opts),
      cache_(std::make_unique<ResultCache>()),
      diameter_mu_(std::make_unique<std::mutex>()) {
  cache_->set_budget_bytes(opts_.cache_budget_bytes);
  // One-time preprocessing while we still hold the graph exclusively:
  // sorted adjacency makes neighbor scans cache-ordered and is required by
  // the sorted-merge clustering kernel. No-op for already-sorted loads.
  graph_.sort_adjacency();
  if (opts_.estimate_diameter_on_load) {
    estimate_diameter(opts_.diameter_samples, opts_.diameter_multiplier);
  }
}

Toolkit::Toolkit(std::shared_ptr<const storage::GraphStore> store,
                 const ToolkitOptions& opts)
    : store_(std::move(store)),
      opts_(opts),
      cache_(std::make_unique<ResultCache>()),
      diameter_mu_(std::make_unique<std::mutex>()) {
  GCT_CHECK(store_ != nullptr, "Toolkit: null graph store");
  cache_->set_budget_bytes(opts_.cache_budget_bytes);
  // Adjacency is immutable on disk; the packer preserved sort order, so no
  // load-time preprocessing is possible (or needed for the view kernels).
  if (opts_.estimate_diameter_on_load) {
    estimate_diameter(opts_.diameter_samples, opts_.diameter_multiplier);
  }
}

const CsrGraph& Toolkit::graph() const {
  GCT_CHECK(store_ == nullptr,
            "this operation needs the in-memory CSR graph, but the graph is "
            "backed by packed store '" + store_->path() +
            "' — load it unpacked, or use a kernel that runs over GraphView");
  return graph_;
}

Toolkit Toolkit::load_dimacs(const std::string& path,
                             const ToolkitOptions& opts) {
  EdgeList el = read_dimacs(path);
  BuildOptions b;  // undirected, deduplicated — GraphCT's default view
  return Toolkit(build_csr(el, b), opts);
}

Toolkit Toolkit::load_binary(const std::string& path,
                             const ToolkitOptions& opts) {
  return Toolkit(read_binary(path), opts);
}

Toolkit Toolkit::load_packed(const std::string& path,
                             const ToolkitOptions& opts,
                             const storage::StoreOptions& store_opts) {
  return Toolkit(std::make_shared<const storage::GraphStore>(path, store_opts),
                 opts);
}

const DiameterEstimate& Toolkit::diameter() {
  {
    std::lock_guard<std::mutex> lock(*diameter_mu_);
    if (current_diameter_) return *current_diameter_;
  }
  return estimate_diameter(opts_.diameter_samples, opts_.diameter_multiplier);
}

const DiameterEstimate& Toolkit::estimate_diameter(std::int64_t num_samples,
                                                   std::int64_t multiplier) {
  auto estimate = cache_->get_or_compute<DiameterEstimate>(
      diameter_key(num_samples, multiplier, opts_.seed), [&] {
        DiameterOptions d;
        d.num_samples = num_samples;
        d.multiplier = multiplier;
        d.seed = opts_.seed;
        return graphct::estimate_diameter(view(), d);
      });
  std::lock_guard<std::mutex> lock(*diameter_mu_);
  current_diameter_ = std::move(estimate);
  return *current_diameter_;
}

const std::vector<vid>& Toolkit::components() {
  return *cache_->get_or_compute<std::vector<vid>>(
      "components", [&] { return weak_components(view()); });
}

const ComponentStats& Toolkit::components_stats() {
  return *cache_->get_or_compute<ComponentStats>(
      "component_stats", [&] { return component_stats(components()); },
      StructBytes{});
}

const Summary& Toolkit::degree_stats() {
  return *cache_->get_or_compute<Summary>(
      "degree_stats", [&] { return degree_summary(view()); });
}

const LogHistogram& Toolkit::degree_histogram() {
  return *cache_->get_or_compute<LogHistogram>(
      "degree_histogram", [&] { return graphct::degree_histogram(view()); });
}

const ClusteringResult& Toolkit::clustering() {
  return *cache_->get_or_compute<ClusteringResult>(
      "clustering", [&] { return clustering_coefficients(graph()); }, StructBytes{});
}

const std::vector<std::int64_t>& Toolkit::core_numbers() {
  return *cache_->get_or_compute<std::vector<std::int64_t>>(
      "kcores", [&] { return graphct::core_numbers(graph()); });
}

const BetweennessResult& Toolkit::betweenness(const BetweennessOptions& opts) {
  return *cache_->get_or_compute<BetweennessResult>(
      bc_key("bc", opts), [&] { return betweenness_centrality(view(), opts); },
      StructBytes{});
}

const KBetweennessResult& Toolkit::k_betweenness(
    const KBetweennessOptions& opts) {
  const std::string key =
      "kbc|k=" + std::to_string(opts.k) +
      "|sources=" + std::to_string(opts.num_sources) +
      "|seed=" + std::to_string(opts.seed) +
      "|budget=" + std::to_string(opts.score_memory_budget_bytes);
  return *cache_->get_or_compute<KBetweennessResult>(
      key, [&] { return k_betweenness_centrality(view(), opts); },
      StructBytes{});
}

const PageRankResult& Toolkit::pagerank(const PageRankOptions& opts) {
  const std::string key = "pagerank|d=" + std::to_string(opts.damping) +
                          "|tol=" + std::to_string(opts.tolerance) +
                          "|iters=" + std::to_string(opts.max_iterations);
  return *cache_->get_or_compute<PageRankResult>(
      key, [&] { return graphct::pagerank(view(), opts); }, StructBytes{});
}

namespace {

/// Ship the Toolkit's graph into the coordinator's workers on first use.
/// Store-backed graphs decode to DRAM here: the blocks are sliced from a
/// CSR either way, and each worker holds only its slice afterwards.
void ensure_dist_loaded(dist::Coordinator& coord, const GraphView& v) {
  if (coord.loaded()) return;
  CsrGraph decoded;
  coord.load_graph(v.as_csr_or(decoded));
}

}  // namespace

const std::vector<vid>& Toolkit::components_dist(dist::Coordinator& coord) {
  const std::string key =
      "components|workers=" + std::to_string(coord.num_workers());
  return *cache_->get_or_compute<std::vector<vid>>(key, [&] {
    ensure_dist_loaded(coord, view());
    return coord.components();
  });
}

const PageRankResult& Toolkit::pagerank_dist(dist::Coordinator& coord,
                                             const PageRankOptions& opts) {
  const std::string key = "pagerank|d=" + std::to_string(opts.damping) +
                          "|tol=" + std::to_string(opts.tolerance) +
                          "|iters=" + std::to_string(opts.max_iterations) +
                          "|workers=" + std::to_string(coord.num_workers());
  return *cache_->get_or_compute<PageRankResult>(
      key,
      [&] {
        ensure_dist_loaded(coord, view());
        return coord.pagerank(opts);
      },
      StructBytes{});
}

const std::vector<vid>& Toolkit::bfs_distances_dist(dist::Coordinator& coord,
                                                    vid source,
                                                    vid max_depth) {
  const std::string key = "bfs|src=" + std::to_string(source) +
                          "|depth=" + std::to_string(max_depth) +
                          "|workers=" + std::to_string(coord.num_workers());
  return *cache_->get_or_compute<std::vector<vid>>(key, [&] {
    ensure_dist_loaded(coord, view());
    return coord.bfs_distances(source, max_depth);
  });
}

const BetweennessResult& Toolkit::betweenness_dist(
    dist::Coordinator& coord, const BetweennessOptions& opts) {
  const std::string key =
      bc_key("bc", opts) + "|workers=" + std::to_string(coord.num_workers());
  return *cache_->get_or_compute<BetweennessResult>(
      key,
      [&] {
        ensure_dist_loaded(coord, view());
        Timer timer;
        const vid n = view().num_vertices();
        const std::vector<vid> sources = choose_sources(view(), opts);
        // Source batching bounds how long a gather can lag: reuse the
        // single-process plan's memory-budget arithmetic at one thread
        // (fine mode plans batch_sources = 0 = one batch).
        const BcPlan plan =
            plan_betweenness(n, static_cast<std::int64_t>(sources.size()),
                             /*threads=*/1, opts, /*directed=*/false);
        BetweennessResult result;
        result.score = coord.betweenness(sources, plan.batch_sources);
        result.sources_used = static_cast<std::int64_t>(sources.size());
        // Workers accumulate in fine-mode per-source order; the forward
        // sweep is the top-down push (there is no distributed pull).
        result.parallelism_used = BcParallelism::kFine;
        result.forward_used = BcForwardEngine::kTopDown;
        result.batches = plan.batch_sources > 0 ? plan.num_batches : 0;
        if (opts.rescale && result.sources_used > 0 &&
            result.sources_used < n) {
          // Same multiply as the single-process rescale: bit-neutral.
          const double scale = static_cast<double>(n) /
                               static_cast<double>(result.sources_used);
          for (double& s : result.score) s *= scale;
        }
        result.seconds = timer.seconds();
        return result;
      },
      StructBytes{});
}

const ClosenessResult& Toolkit::closeness(const ClosenessOptions& opts) {
  const std::string key = "closeness|sources=" +
                          std::to_string(opts.num_sources) +
                          "|seed=" + std::to_string(opts.seed) +
                          "|rescale=" + std::to_string(opts.rescale);
  return *cache_->get_or_compute<ClosenessResult>(
      key, [&] { return closeness_centrality(view(), opts); }, StructBytes{});
}

const CommunityResult& Toolkit::communities() {
  return *cache_->get_or_compute<CommunityResult>("communities", [&] {
    LabelPropagationOptions o;
    o.seed = opts_.seed;
    return label_propagation(graph(), o);
  }, StructBytes{});
}

double Toolkit::community_modularity() {
  const auto& c = communities();
  return *cache_->get_or_compute<double>("modularity", [&] {
    return modularity(graph(),
                      std::span<const vid>(c.labels.data(), c.labels.size()));
  });
}

CsrGraph Toolkit::component_graph(std::int64_t i) {
  const auto& stats = components_stats();
  GCT_CHECK(i >= 0 && i < stats.num_components,
            "extract_component: index out of range");
  // Subgraph surgery needs CSR internals; a store-backed graph decodes to
  // DRAM here (the extracted component is in-memory either way).
  CsrGraph decoded;
  Subgraph sub = extract_by_label(view().as_csr_or(decoded), components(),
                                  stats.sizes[static_cast<std::size_t>(i)].first);
  return std::move(sub.graph);
}

Toolkit Toolkit::extract_component(std::int64_t i) {
  return Toolkit(component_graph(i), opts_);
}

void Toolkit::replace_graph(CsrGraph g) {
  graph_ = std::move(g);
  store_.reset();
  graph_.sort_adjacency();
  invalidate();
}

void Toolkit::replace_graph(std::shared_ptr<const storage::GraphStore> store) {
  GCT_CHECK(store != nullptr, "replace_graph: null graph store");
  store_ = std::move(store);
  graph_ = CsrGraph();
  invalidate();
}

void Toolkit::invalidate() {
  cache_->invalidate();
  std::lock_guard<std::mutex> lock(*diameter_mu_);
  current_diameter_.reset();
}

}  // namespace graphct
