#pragma once

/// \file metrics.hpp
/// Thread-safe metrics registry: counters, gauges, histograms.
///
/// The paper's contribution is performance numbers (approximate BC over
/// 8.6 B edges in 55 minutes); a reproduction that cannot measure itself
/// cannot reproduce them. This registry is the single place every subsystem
/// reports into: kernels record run counts and latency histograms, the
/// ResultCache reports hits/misses, the server's job queue reports
/// queue-wait and run time, and the OpenMP layer reports the effective
/// thread count. Exposition is pull-based — `snapshot()` renders to JSON or
/// Prometheus text — so reading metrics never blocks writers.
///
/// Design constraints, in order:
///   1. Writes happen on OpenMP hot paths, so counters are sharded across
///      cache-line-padded slots indexed by a per-thread id and merged on
///      read: increments are one relaxed atomic add with no sharing between
///      threads in the common case.
///   2. `obs` sits *below* util in the link order (graphct_obs has no
///      in-project dependencies), so even the lowest layers (ResultCache,
///      parallel.cpp) can report without cycles.
///   3. Metric references returned by the registry are stable for the
///      registry's lifetime; callers may cache them.
///
/// Naming scheme (see docs/OBSERVABILITY.md): `gct_<noun>_<unit>` with
/// Prometheus-style `{label="value"}` suffixes spelled directly in the
/// metric name, e.g. `gct_kernel_seconds{kernel="bc"}`.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace graphct::obs {

/// Monotonic counter, sharded per thread to stay off the OpenMP hot path.
/// add() is one relaxed atomic increment on a (usually) thread-private
/// cache line; value() merges the shards.
class Counter {
 public:
  Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::int64_t delta = 1);
  [[nodiscard]] std::int64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  static constexpr int kShards = 64;  // power of two; see shard_index()
  static int shard_index();
  std::unique_ptr<Shard[]> shards_;
};

/// Last-writer-wins instantaneous value (thread counts, resident graphs).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` (inclusive upper bound)
/// semantics. observe() is two relaxed atomic adds plus a CAS loop for the
/// sum; bucket counts are non-cumulative internally and cumulated at
/// exposition time.
class Histogram {
 public:
  /// `bounds` must be sorted ascending; an implicit +Inf bucket is added.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x);

  struct Snapshot {
    std::vector<double> bounds;        ///< finite upper bounds
    std::vector<std::int64_t> counts;  ///< per-bucket (bounds.size() + 1)
    std::int64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Default bucket boundaries for durations in seconds (1 ms .. 10 min).
  static std::vector<double> seconds_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every metric, renderable as JSON or Prometheus
/// text exposition. Taking a snapshot never blocks metric writers.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// One JSON object on a single line:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (# TYPE comments, _bucket/_sum/
  /// _count for histograms, labels passed through from metric names).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Thread-safe name -> metric registry. Lookup takes a mutex; the returned
/// references are stable for the registry's lifetime, so hot paths resolve
/// once and cache the pointer.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates with `bounds` on first use (Histogram::seconds_buckets() when
  /// empty); later calls ignore `bounds` and return the existing histogram.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every counter and gauge and drop histograms (testing only; not
  /// safe concurrently with writers holding cached references to
  /// histograms).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry every subsystem reports into. Multiple
/// Toolkits, servers, and sessions share it: metrics describe the process,
/// not one object (per-object accounting, like ResultCache::stats(), stays
/// on the object).
Registry& registry();

/// Escape `raw` for embedding inside a Prometheus label value — metric
/// names carry their labels inline ('name{key="value"}'), so any dynamic
/// value (kernel names, error strings) must go through this before being
/// spliced into a name. Escapes backslash, double quote, and newline per
/// the exposition-format rules.
std::string prom_label_value(std::string_view raw);

}  // namespace graphct::obs
