#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/metrics.hpp"

namespace graphct::obs {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-thread profile under construction. Owned (installed / torn down) by
/// the root KernelScope; spans and nested scopes only append to it.
struct Sink {
  const char* kernel = nullptr;
  std::vector<PhaseStats> phases;
  std::vector<int> open;  ///< stack of phase indices currently entered
  int depth = 0;
  std::int64_t vertices = 0;
  std::int64_t edges = 0;

  void reset(const char* name) {
    kernel = name;
    phases.clear();
    open.clear();
    depth = 0;
    vertices = 0;
    edges = 0;
  }

  /// Phases are keyed by (name, depth) so a span re-entered in a loop (or
  /// per BFS source) accumulates into one row. Kernels have a handful of
  /// phases, so a linear scan beats a map here.
  int find_or_add(const char* name, int at_depth) {
    for (std::size_t i = 0; i < phases.size(); ++i) {
      if (phases[i].depth == at_depth && phases[i].name == name) {
        return static_cast<int>(i);
      }
    }
    PhaseStats p;
    p.name = name;
    p.depth = at_depth;
    phases.push_back(std::move(p));
    return static_cast<int>(phases.size() - 1);
  }
};

thread_local Sink tl_sink_storage;
thread_local Sink* tl_sink = nullptr;
thread_local int tl_suspend_depth = 0;
thread_local std::vector<KernelProfile> tl_done;

std::atomic<bool> g_profiling{false};

int enter_phase(const char* name) {
  Sink* sink = tl_sink;
  if (!sink) return -1;
  sink->depth++;
  const int index = sink->find_or_add(name, sink->depth);
  sink->phases[static_cast<std::size_t>(index)].calls++;
  sink->open.push_back(index);
  return index;
}

void exit_phase(int index, Clock::time_point start) {
  Sink* sink = tl_sink;
  if (!sink || index < 0) return;
  sink->phases[static_cast<std::size_t>(index)].seconds +=
      elapsed_seconds(start);
  sink->open.pop_back();
  sink->depth--;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no Inf/NaN
  char buf[64];
  // Integral values print plainly; everything else gets the shortest
  // representation that round-trips (seconds fields would otherwise render
  // as 0.020000000000000004 and the like).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

// ------------------------------------------------------------- switches

bool profiling_enabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  g_profiling.store(on, std::memory_order_relaxed);
}

bool profile_active() { return tl_sink != nullptr; }

void add_work(std::int64_t vertices, std::int64_t edges) {
  Sink* sink = tl_sink;
  if (!sink) return;
  if (!sink->open.empty()) {
    PhaseStats& p =
        sink->phases[static_cast<std::size_t>(sink->open.back())];
    p.vertices += vertices;
    p.edges += edges;
  }
  sink->vertices += vertices;
  sink->edges += edges;
}

int effective_threads() {
#ifdef _OPENMP
  int n = 1;
#pragma omp parallel
  {
#pragma omp single
    n = omp_get_num_threads();
  }
  return n;
#else
  return 1;
#endif
}

// ----------------------------------------------------------------- Span

Span::Span(const char* name) {
  index_ = enter_phase(name);
  // Clock read only when recording: the disabled path stays one
  // thread_local load and a branch.
  if (index_ >= 0) start_ = Clock::now();
}

Span::~Span() { exit_phase(index_, start_); }

// ---------------------------------------------------------- KernelScope

KernelScope::KernelScope(const char* kernel)
    : name_(kernel), start_(Clock::now()) {
  if (tl_sink) {
    // Composed kernels (bfs inside diameter, components inside bc source
    // sampling) become phases of the outer profile rather than profiles
    // of their own.
    index_ = enter_phase(kernel);
    return;
  }
  owner_ = true;
  // Inside a SuspendCollection stretch tl_sink_storage still belongs to the
  // suspended profile; starting a new collection would clobber it.
  if (profiling_enabled() && tl_suspend_depth == 0) {
    collecting_ = true;
    tl_sink_storage.reset(kernel);
    tl_sink = &tl_sink_storage;
  }
}

KernelScope::~KernelScope() {
  const double secs = seconds();
  if (!owner_) {
    exit_phase(index_, start_);
    return;
  }
  if (collecting_) {
    Sink* sink = tl_sink;
    tl_sink = nullptr;  // detach before effective_threads()' parallel region
    KernelProfile profile;
    profile.kernel = name_;
    profile.seconds = secs;
    profile.threads = effective_threads();
    profile.vertices = sink->vertices;
    profile.edges = sink->edges;
    profile.phases = std::move(sink->phases);
    tl_done.push_back(std::move(profile));
  }
  const std::string label = std::string("{kernel=\"") + name_ + "\"}";
  registry().counter("gct_kernel_runs_total" + label).add();
  registry().histogram("gct_kernel_seconds" + label).observe(secs);
}

double KernelScope::seconds() const { return elapsed_seconds(start_); }

// ---------------------------------------------------- SuspendCollection

SuspendCollection::SuspendCollection() : saved_(tl_sink) {
  tl_sink = nullptr;
  ++tl_suspend_depth;
}

SuspendCollection::~SuspendCollection() {
  --tl_suspend_depth;
  tl_sink = static_cast<Sink*>(saved_);
}

// ------------------------------------------------------------- profiles

std::vector<KernelProfile> drain_profiles() {
  std::vector<KernelProfile> out;
  out.swap(tl_done);
  return out;
}

void clear_profiles() { tl_done.clear(); }

double KernelProfile::phase_seconds(int depth) const {
  double total = 0.0;
  for (const PhaseStats& p : phases) {
    if (p.depth == depth) total += p.seconds;
  }
  return total;
}

std::string KernelProfile::to_json() const {
  std::ostringstream out;
  out << "{\"kernel\":\"" << json_escape(kernel) << '"'
      << ",\"seconds\":" << json_double(seconds)
      << ",\"threads\":" << threads << ",\"vertices\":" << vertices
      << ",\"edges\":" << edges << ",\"teps\":" << json_double(teps())
      << ",\"phases\":[";
  bool first = true;
  for (const PhaseStats& p : phases) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(p.name) << '"'
        << ",\"depth\":" << p.depth << ",\"calls\":" << p.calls
        << ",\"seconds\":" << json_double(p.seconds)
        << ",\"vertices\":" << p.vertices << ",\"edges\":" << p.edges
        << '}';
  }
  out << "]}";
  return out.str();
}

std::string format_profile(const KernelProfile& profile) {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "profile %s: %.4f s, %d threads, %lld vertices, %lld edges",
                profile.kernel.c_str(), profile.seconds, profile.threads,
                static_cast<long long>(profile.vertices),
                static_cast<long long>(profile.edges));
  out << buf;
  if (profile.edges > 0) {
    std::snprintf(buf, sizeof(buf), ", %.3e TEPS", profile.teps());
    out << buf;
  }
  out << '\n';
  if (profile.phases.empty()) return out.str();

  std::size_t name_width = 5;  // "phase"
  for (const PhaseStats& p : profile.phases) {
    const std::size_t w =
        p.name.size() + 2 * static_cast<std::size_t>(p.depth - 1);
    name_width = std::max(name_width, w);
  }
  std::snprintf(buf, sizeof(buf),
                "  %-*s %8s %12s %7s %12s %14s\n",(int)name_width, "phase",
                "calls", "seconds", "%", "vertices", "edges");
  out << buf;
  for (const PhaseStats& p : profile.phases) {
    const std::string indent(2 * static_cast<std::size_t>(p.depth - 1), ' ');
    const std::string name = indent + p.name;
    const double pct =
        profile.seconds > 0 ? 100.0 * p.seconds / profile.seconds : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "  %-*s %8lld %12.4f %6.1f%% %12lld %14lld\n",
                  (int)name_width, name.c_str(),
                  static_cast<long long>(p.calls), p.seconds, pct,
                  static_cast<long long>(p.vertices),
                  static_cast<long long>(p.edges));
    out << buf;
  }
  const double accounted = profile.phase_seconds(1);
  const double rest = profile.seconds - accounted;
  if (rest > 0.0005 * std::max(1.0, profile.seconds)) {
    const double pct =
        profile.seconds > 0 ? 100.0 * rest / profile.seconds : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-*s %8s %12.4f %6.1f%%\n",
                  (int)name_width, "(unattributed)", "", rest, pct);
    out << buf;
  }
  return out.str();
}

}  // namespace graphct::obs
