#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace graphct::obs {

namespace {

/// Escape a string for use as a JSON key/value (metric names embed quotes
/// when they carry Prometheus-style labels).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  // Integral values print plainly (le="10", not le="1e+01"); everything
  // else gets the shortest representation that round-trips, so bucket
  // bounds like 0.1 expose as "0.1", not "0.10000000000000001".
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Split "name{label=\"x\"}" into ("name", "{label=\"x\"}"); labels may be
/// absent. Prometheus histograms need the split to splice _bucket/_sum/
/// _count between the base name and the label set.
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  return {name.substr(0, brace), name.substr(brace)};
}

/// Merge an extra label into a (possibly empty) label suffix.
std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

}  // namespace

std::string prom_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------- Counter

Counter::Counter() : shards_(new Shard[kShards]) {}

int Counter::shard_index() {
  // Each OS thread (OpenMP pool threads included — they are plain pthreads)
  // grabs a distinct slot on first use; collisions after 64 threads are
  // correct, just contended.
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

void Counter::add(std::int64_t delta) {
  shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (int i = 0; i < kShards; ++i) {
    total += shards_[i].v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (int i = 0; i < kShards; ++i) {
    shards_[i].v.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------------ Gauge

void Gauge::add(double delta) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

// -------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::int64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> Histogram::seconds_buckets() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0};
}

// --------------------------------------------------------------- Registry

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::seconds_buckets();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c->value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, g->value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0.0);
  histograms_.clear();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

// ----------------------------------------------------------- exposition

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << format_double(v);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << format_double(h.sum) << ",\"buckets\":[";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      if (i > 0) out << ',';
      const std::string le =
          i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
      out << "[\"" << le << "\"," << cumulative << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream out;
  std::string last_family;
  const auto type_line = [&](const std::string& name, const char* type) {
    const auto [base, labels] = split_labels(name);
    (void)labels;
    if (base != last_family) {
      out << "# TYPE " << base << ' ' << type << '\n';
      last_family = base;
    }
  };
  for (const auto& [name, v] : counters) {
    type_line(name, "counter");
    out << name << ' ' << v << '\n';
  }
  last_family.clear();
  for (const auto& [name, v] : gauges) {
    type_line(name, "gauge");
    out << name << ' ' << format_double(v) << '\n';
  }
  last_family.clear();
  for (const auto& [name, h] : histograms) {
    type_line(name, "histogram");
    const auto [base, labels] = split_labels(name);
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
      out << base << "_bucket"
          << with_label(labels, "le=\"" + le + "\"") << ' ' << cumulative
          << '\n';
    }
    out << base << "_sum" << labels << ' ' << format_double(h.sum) << '\n';
    out << base << "_count" << labels << ' ' << h.count << '\n';
  }
  return out.str();
}

}  // namespace graphct::obs
