#pragma once

/// \file trace.hpp
/// Scoped tracing spans and per-kernel phase profiling.
///
/// This is the repo's single phase-timing mechanism: kernels mark their
/// phases with `GCT_SPAN("bc.dependency_accum")` and their entry point with
/// a `KernelScope`, and the profiler attributes wall time, call counts, and
/// work counters (vertices visited / edges traversed, hence TEPS) to each
/// phase. The same instrumentation serves the CLI's `--profile` table, the
/// script interpreter's `profile on`, the server's per-command profiles,
/// and `bench/kernel_profile`'s JSON baselines.
///
/// Cost model — the reason this can live inside every kernel permanently:
///   * Profiling disabled (default): a Span is one thread_local load and a
///     branch; a KernelScope is two steady_clock reads plus one registry
///     counter/histogram update per *kernel run*. Kernel throughput is
///     unaffected (< 2% on the bench smoke graph; see ISSUE 3).
///   * Profiling enabled: spans take two clock reads and a short linear
///     scan; kernels additionally compute exact work counters where cheap.
///
/// Collection model: `set_profiling_enabled(true)` arms collection
/// process-wide. The first KernelScope opened on a thread becomes the root
/// of a profile; spans and nested KernelScopes opened on the *same thread*
/// while it is live become phases, keyed by (name, depth) and accumulated
/// across repeat entries (loops, per-source calls). Spans opened on OpenMP
/// worker threads inside a parallel region are not recorded — phases are
/// attributed by the orchestrating thread, and a phase that *contains* a
/// parallel region reports its full wall time, so top-level (depth-1)
/// phase times still sum to the kernel total. Completed profiles queue on
/// a thread-local list until `drain_profiles()` (the thread that ran the
/// kernel prints them — CLI main, script interpreter, or server worker).

#include <cstdint>
#include <chrono>
#include <string>
#include <vector>

namespace graphct::obs {

/// Accumulated statistics for one (name, depth) phase of a kernel run.
struct PhaseStats {
  std::string name;
  int depth = 1;            ///< 1 = direct child of the kernel root
  std::int64_t calls = 0;   ///< times the span was entered
  double seconds = 0.0;     ///< total wall time across entries
  std::int64_t vertices = 0;  ///< work attributed via add_work()
  std::int64_t edges = 0;
};

/// One kernel run's profile: total wall time, effective thread count, work
/// counters, and phases in first-entered order.
struct KernelProfile {
  std::string kernel;
  double seconds = 0.0;
  int threads = 0;
  std::int64_t vertices = 0;  ///< total across all phases
  std::int64_t edges = 0;

  std::vector<PhaseStats> phases;

  /// Traversed edges per second over the whole kernel (the paper's §V
  /// runtime currency); 0 when no edge work was recorded.
  [[nodiscard]] double teps() const {
    return seconds > 0.0 ? static_cast<double>(edges) / seconds : 0.0;
  }

  /// Sum of phase wall time at `depth` (depth-1 phases partition the
  /// kernel, so phase_seconds(1) ~= seconds up to instrumentation gaps).
  [[nodiscard]] double phase_seconds(int depth = 1) const;

  /// One-line JSON object (kernel, seconds, threads, vertices, edges,
  /// teps, phases[]) — the bench/kernel_profile line format.
  [[nodiscard]] std::string to_json() const;
};

/// Render a profile as an indented fixed-width phase table (the CLI's
/// `--profile` output). Self-contained so obs stays dependency-free.
std::string format_profile(const KernelProfile& profile);

/// Process-wide collection switch. Cheap to read (one relaxed atomic).
bool profiling_enabled();
void set_profiling_enabled(bool on);

/// True when the calling thread is inside a collecting KernelScope. Guards
/// work-counter computations that are only cheap relative to profiling
/// (e.g. summing frontier degrees).
bool profile_active();

/// Attribute work to the innermost open span on this thread (the kernel
/// root when no span is open). No-op when no profile is active.
void add_work(std::int64_t vertices, std::int64_t edges);

/// Measured OpenMP thread count: spawns a trivial parallel region and
/// reports how many threads actually materialized, which is what profiles
/// and job records store (the requested count can be lied to by
/// OMP_THREAD_LIMIT, nesting, or the runtime).
int effective_threads();

/// RAII phase marker. Use through GCT_SPAN; nestable and reentrant —
/// re-entering a name at the same depth accumulates into one PhaseStats.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// False when no profile is active (the span records nothing).
  [[nodiscard]] bool active() const { return index_ >= 0; }

 private:
  int index_ = -1;  ///< phase slot in the thread's sink; -1 = inactive
  std::chrono::steady_clock::time_point start_;
};

#define GCT_OBS_CONCAT_INNER(a, b) a##b
#define GCT_OBS_CONCAT(a, b) GCT_OBS_CONCAT_INNER(a, b)
/// Open a profiling span for the rest of the enclosing block.
#define GCT_SPAN(name) \
  ::graphct::obs::Span GCT_OBS_CONCAT(gct_span_, __COUNTER__)(name)

/// RAII kernel entry marker. Always measures wall time (kernels report
/// result.seconds from it — the one timing mechanism), and:
///   * as the outermost scope on the thread: records the run into the
///     metrics registry (gct_kernel_runs_total / gct_kernel_seconds) and,
///     when profiling is enabled, collects a KernelProfile;
///   * nested inside another KernelScope (bfs inside bc, components inside
///     sampling): degrades to a plain phase span.
class KernelScope {
 public:
  explicit KernelScope(const char* kernel);
  ~KernelScope();
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  /// Wall seconds since construction (live; used for result.seconds).
  [[nodiscard]] double seconds() const;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool owner_ = false;       ///< outermost scope on this thread
  bool collecting_ = false;  ///< owner with profiling enabled at entry
  int index_ = -1;           ///< phase slot when nested
};

/// RAII: detach the calling thread's live profile for a stretch of code.
/// Coarse-parallel kernels use it around source-parallel regions: the
/// orchestrating thread participates in the region, and without suspension
/// its share of per-source work would be recorded exactly while the other
/// threads' shares are invisible — the caller instead accounts for the whole
/// region in bulk after it ends.
class SuspendCollection {
 public:
  SuspendCollection();
  ~SuspendCollection();
  SuspendCollection(const SuspendCollection&) = delete;
  SuspendCollection& operator=(const SuspendCollection&) = delete;

 private:
  void* saved_;
};

/// Run `fn` under a root KernelScope named `name` and return its wall
/// seconds — the bench harness' one-liner replacement for ad-hoc Timer
/// start/stop pairs (the run also lands in the metrics registry and, when
/// profiling is on, the profile log).
template <typename Fn>
double timed(const char* name, Fn&& fn) {
  KernelScope scope(name);
  fn();
  return scope.seconds();
}

/// Move out the calling thread's completed profiles (oldest first).
std::vector<KernelProfile> drain_profiles();

/// Discard the calling thread's completed profiles.
void clear_profiles();

}  // namespace graphct::obs
