#pragma once

/// \file sliding_window.hpp
/// A time-windowed live graph: edges carry timestamps, arrive in order, and
/// expire once they fall out of the trailing window. Multiple observations
/// of the same edge are reference-counted, so the edge survives until its
/// *last* observation expires. Triangle counts stay current through the
/// embedded StreamingClustering.
///
/// This is the machinery for "live" views of a tweet stream — the paper's
/// temporal future work combined with its authors' streaming analytics
/// (ref [10]): at any instant the analyst can ask for the clustering
/// structure of the last hour's conversations without recomputation.

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "stream/streaming_clustering.hpp"

namespace graphct {

/// Sliding-window graph over a fixed vertex set.
class SlidingWindowGraph {
 public:
  /// `window_seconds` — trailing window width; an observation at time t
  /// expires when now > t + window_seconds.
  SlidingWindowGraph(vid num_vertices, std::int64_t window_seconds);

  /// Observe edge {u, v} at `timestamp` (must be >= every prior timestamp).
  /// Expires old observations first. Self-loops are ignored (they carry no
  /// clustering information).
  void observe(vid u, vid v, std::int64_t timestamp);

  /// Advance the clock without new observations (expiring stale edges).
  void advance(std::int64_t now);

  /// Current live structure.
  [[nodiscard]] const StreamingClustering& live() const { return live_; }

  /// Observations currently inside the window (counting multiplicity).
  [[nodiscard]] std::int64_t active_observations() const {
    return static_cast<std::int64_t>(events_.size());
  }

  [[nodiscard]] std::int64_t window_seconds() const { return window_; }
  [[nodiscard]] std::int64_t now() const { return now_; }

 private:
  struct Event {
    std::int64_t timestamp;
    vid u, v;
  };

  static std::uint64_t key(vid u, vid v) {
    const auto a = static_cast<std::uint64_t>(u < v ? u : v);
    const auto b = static_cast<std::uint64_t>(u < v ? v : u);
    return (a << 32) | b;
  }

  void expire();

  StreamingClustering live_;
  std::deque<Event> events_;                       // timestamp-ordered
  std::unordered_map<std::uint64_t, std::int32_t> refcount_;
  std::int64_t window_;
  std::int64_t now_ = 0;
};

}  // namespace graphct
