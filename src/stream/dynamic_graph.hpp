#pragma once

/// \file dynamic_graph.hpp
/// A dynamic undirected graph for streaming updates.
///
/// The paper analyzes a static snapshot but its authors' companion work
/// (ref [10], "Massive streaming data analytics: a case study with
/// clustering coefficients", MTAAP 2010) processes the tweet stream as edge
/// insertions into a dynamic structure. This is that substrate: a
/// fixed-vertex-set undirected multigraph-free graph with sorted per-vertex
/// adjacency vectors, O(deg) insert/erase, O(log deg) membership, and a
/// CSR snapshot for handing live graphs to the static kernels.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Dynamic undirected graph over a fixed vertex set [0, n).
/// Self-loops are permitted (stored once); parallel edges are not (inserting
/// an existing edge is a no-op that reports false).
class DynamicGraph {
 public:
  explicit DynamicGraph(vid num_vertices);

  /// Build pre-populated from a static undirected graph.
  explicit DynamicGraph(const CsrGraph& g);

  [[nodiscard]] vid num_vertices() const {
    return static_cast<vid>(adjacency_.size());
  }
  [[nodiscard]] eid num_edges() const { return num_edges_; }

  /// Insert undirected edge {u, v}. Returns true if the graph changed
  /// (false when the edge already existed).
  bool insert_edge(vid u, vid v);

  /// Remove undirected edge {u, v}. Returns true if the graph changed.
  bool remove_edge(vid u, vid v);

  [[nodiscard]] bool has_edge(vid u, vid v) const;
  [[nodiscard]] vid degree(vid v) const {
    return static_cast<vid>(adjacency_[static_cast<std::size_t>(v)].size());
  }
  [[nodiscard]] std::span<const vid> neighbors(vid v) const {
    const auto& a = adjacency_[static_cast<std::size_t>(v)];
    return {a.data(), a.size()};
  }

  /// Freeze the current state into a CSR graph (for the static kernels).
  [[nodiscard]] CsrGraph snapshot() const;

 private:
  std::vector<std::vector<vid>> adjacency_;  // each sorted ascending
  eid num_edges_ = 0;
};

}  // namespace graphct
