#include "stream/sliding_window.hpp"

#include "util/error.hpp"

namespace graphct {

SlidingWindowGraph::SlidingWindowGraph(vid num_vertices,
                                       std::int64_t window_seconds)
    : live_(num_vertices), window_(window_seconds) {
  GCT_CHECK(window_seconds > 0,
            "SlidingWindowGraph: window must be positive");
  GCT_CHECK(num_vertices < (vid{1} << 32),
            "SlidingWindowGraph: vertex ids must fit 32 bits");
}

void SlidingWindowGraph::observe(vid u, vid v, std::int64_t timestamp) {
  GCT_CHECK(timestamp >= now_,
            "SlidingWindowGraph: observations must arrive in time order");
  now_ = timestamp;
  expire();
  if (u == v) return;
  events_.push_back({timestamp, u, v});
  if (++refcount_[key(u, v)] == 1) {
    live_.insert_edge(u, v);
  }
}

void SlidingWindowGraph::advance(std::int64_t now) {
  GCT_CHECK(now >= now_, "SlidingWindowGraph: clock cannot run backwards");
  now_ = now;
  expire();
}

void SlidingWindowGraph::expire() {
  while (!events_.empty() && events_.front().timestamp + window_ < now_) {
    const Event e = events_.front();
    events_.pop_front();
    const auto k = key(e.u, e.v);
    auto it = refcount_.find(k);
    GCT_ASSERT(it != refcount_.end());
    if (--it->second == 0) {
      refcount_.erase(it);
      live_.remove_edge(e.u, e.v);
    }
  }
}

}  // namespace graphct
