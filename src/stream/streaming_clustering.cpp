#include "stream/streaming_clustering.hpp"

#include "algs/clustering.hpp"
#include "util/error.hpp"

namespace graphct {

StreamingClustering::StreamingClustering(vid num_vertices)
    : graph_(num_vertices),
      triangles_(static_cast<std::size_t>(num_vertices), 0) {}

StreamingClustering::StreamingClustering(const CsrGraph& g) : graph_(g) {
  const auto stat = clustering_coefficients(g);
  triangles_ = stat.triangles;
  total_ = stat.total_triangles;
}

void StreamingClustering::update_triangles(vid u, vid v, std::int64_t delta) {
  // Common neighbors of u and v are exactly the triangles the edge {u,v}
  // opens or closes. Sorted-intersection over the two adjacency vectors.
  const auto nu = graph_.neighbors(u);
  const auto nv = graph_.neighbors(v);
  auto iu = nu.begin();
  auto iv = nv.begin();
  while (iu != nu.end() && iv != nv.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      const vid w = *iu;
      // Self-loop entries (u in N(u)) never intersect as a third vertex
      // distinct from u, v; skip degenerate w.
      if (w != u && w != v) {
        triangles_[static_cast<std::size_t>(u)] += delta;
        triangles_[static_cast<std::size_t>(v)] += delta;
        triangles_[static_cast<std::size_t>(w)] += delta;
        total_ += delta;
      }
      ++iu;
      ++iv;
    }
  }
}

bool StreamingClustering::insert_edge(vid u, vid v) {
  if (graph_.has_edge(u, v)) return false;
  // Count against the adjacency *before* the edge exists, then insert.
  if (u != v) update_triangles(u, v, +1);
  graph_.insert_edge(u, v);
  return true;
}

bool StreamingClustering::remove_edge(vid u, vid v) {
  if (!graph_.has_edge(u, v)) return false;
  graph_.remove_edge(u, v);
  // Count against the adjacency *after* removal — the exact inverse.
  if (u != v) update_triangles(u, v, -1);
  return true;
}

double StreamingClustering::coefficient(vid v) const {
  std::int64_t d = graph_.degree(v);
  if (graph_.has_edge(v, v)) --d;
  if (d < 2) return 0.0;
  return 2.0 * static_cast<double>(triangles_[static_cast<std::size_t>(v)]) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double StreamingClustering::global_clustering() const {
  const vid n = graph_.num_vertices();
  std::int64_t wedges = 0;
  for (vid v = 0; v < n; ++v) {
    std::int64_t d = graph_.degree(v);
    if (graph_.has_edge(v, v)) --d;
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(total_) / static_cast<double>(wedges);
}

}  // namespace graphct
