#include "stream/dynamic_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace graphct {

DynamicGraph::DynamicGraph(vid num_vertices)
    : adjacency_(static_cast<std::size_t>(num_vertices)) {
  GCT_CHECK(num_vertices >= 0, "DynamicGraph: negative vertex count");
}

DynamicGraph::DynamicGraph(const CsrGraph& g)
    : adjacency_(static_cast<std::size_t>(g.num_vertices())) {
  GCT_CHECK(!g.directed(), "DynamicGraph: input must be undirected");
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    auto& a = adjacency_[static_cast<std::size_t>(v)];
    a.assign(nbrs.begin(), nbrs.end());
    if (!g.sorted_adjacency()) std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  num_edges_ = 0;
  for (vid v = 0; v < num_vertices(); ++v) {
    for (vid u : adjacency_[static_cast<std::size_t>(v)]) {
      if (u >= v) ++num_edges_;  // counts each pair once, self-loops once
    }
  }
}

namespace {
// Insert `x` into sorted vector `a`; returns false if already present.
bool sorted_insert(std::vector<graphct::vid>& a, graphct::vid x) {
  const auto it = std::lower_bound(a.begin(), a.end(), x);
  if (it != a.end() && *it == x) return false;
  a.insert(it, x);
  return true;
}

// Erase `x` from sorted vector `a`; returns false if absent.
bool sorted_erase(std::vector<graphct::vid>& a, graphct::vid x) {
  const auto it = std::lower_bound(a.begin(), a.end(), x);
  if (it == a.end() || *it != x) return false;
  a.erase(it);
  return true;
}
}  // namespace

bool DynamicGraph::insert_edge(vid u, vid v) {
  const vid n = num_vertices();
  GCT_CHECK(u >= 0 && u < n && v >= 0 && v < n,
            "DynamicGraph::insert_edge: endpoint out of range");
  if (!sorted_insert(adjacency_[static_cast<std::size_t>(u)], v)) return false;
  if (u != v) {
    sorted_insert(adjacency_[static_cast<std::size_t>(v)], u);
  }
  ++num_edges_;
  return true;
}

bool DynamicGraph::remove_edge(vid u, vid v) {
  const vid n = num_vertices();
  GCT_CHECK(u >= 0 && u < n && v >= 0 && v < n,
            "DynamicGraph::remove_edge: endpoint out of range");
  if (!sorted_erase(adjacency_[static_cast<std::size_t>(u)], v)) return false;
  if (u != v) {
    sorted_erase(adjacency_[static_cast<std::size_t>(v)], u);
  }
  --num_edges_;
  return true;
}

bool DynamicGraph::has_edge(vid u, vid v) const {
  const vid n = num_vertices();
  GCT_CHECK(u >= 0 && u < n && v >= 0 && v < n,
            "DynamicGraph::has_edge: endpoint out of range");
  const auto& a = adjacency_[static_cast<std::size_t>(u)];
  return std::binary_search(a.begin(), a.end(), v);
}

CsrGraph DynamicGraph::snapshot() const {
  const vid n = num_vertices();
  std::vector<eid> offsets(static_cast<std::size_t>(n) + 1, 0);
  vid self_loops = 0;
  for (vid v = 0; v < n; ++v) {
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[static_cast<std::size_t>(v)] +
        static_cast<eid>(adjacency_[static_cast<std::size_t>(v)].size());
    if (has_edge(v, v)) ++self_loops;
  }
  std::vector<vid> adj;
  adj.reserve(static_cast<std::size_t>(offsets.back()));
  for (vid v = 0; v < n; ++v) {
    const auto& a = adjacency_[static_cast<std::size_t>(v)];
    adj.insert(adj.end(), a.begin(), a.end());
  }
  return CsrGraph(std::move(offsets), std::move(adj), /*directed=*/false,
                  self_loops, /*sorted=*/true);
}

}  // namespace graphct
