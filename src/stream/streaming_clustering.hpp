#pragma once

/// \file streaming_clustering.hpp
/// Incrementally maintained clustering coefficients over a dynamic graph —
/// the algorithm of the authors' companion paper (ref [10], MTAAP 2010):
/// when edge {u, v} arrives, the triangles it closes are exactly the common
/// neighbors of u and v, so per-vertex triangle counts update in
/// O(deg(u) + deg(v)) by one sorted-intersection, with deletions the exact
/// inverse. Coefficients are then available at any instant without
/// recomputation — the streaming analytics regime for live tweet graphs.

#include <cstdint>
#include <vector>

#include "stream/dynamic_graph.hpp"

namespace graphct {

/// Dynamic graph + live triangle counts.
class StreamingClustering {
 public:
  explicit StreamingClustering(vid num_vertices);

  /// Seed from a static graph (counts initialized by a full static pass).
  explicit StreamingClustering(const CsrGraph& g);

  /// Insert {u, v}; updates triangle counts incrementally.
  /// Returns false (and changes nothing) when the edge already existed.
  bool insert_edge(vid u, vid v);

  /// Remove {u, v}; updates triangle counts incrementally.
  bool remove_edge(vid u, vid v);

  [[nodiscard]] const DynamicGraph& graph() const { return graph_; }

  /// Triangles through v, maintained incrementally.
  [[nodiscard]] std::int64_t triangles(vid v) const {
    return triangles_[static_cast<std::size_t>(v)];
  }

  /// Total distinct triangles.
  [[nodiscard]] std::int64_t total_triangles() const { return total_; }

  /// Local clustering coefficient of v right now (0 when deg < 2;
  /// self-loops excluded from the degree).
  [[nodiscard]] double coefficient(vid v) const;

  /// Global transitivity right now: 3*triangles / wedges.
  [[nodiscard]] double global_clustering() const;

 private:
  // Shared by insert (+1) and remove (-1).
  void update_triangles(vid u, vid v, std::int64_t delta);

  DynamicGraph graph_;
  std::vector<std::int64_t> triangles_;
  std::int64_t total_ = 0;
};

}  // namespace graphct
