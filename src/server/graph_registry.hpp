#pragma once

/// \file graph_registry.hpp
/// Named, shared, refcounted graph residency for graphctd.
///
/// The paper's workflow amortizes one expensive load over many kernels
/// (§IV-A); a long-running server amortizes it over many *sessions*. The
/// registry loads each named graph exactly once — concurrent loaders of the
/// same name block on the first load — and hands out shared_ptr<Toolkit>
/// aliases. Sessions hold the pointer for as long as they use the graph, so
/// dropping a name from the registry frees the memory only after the last
/// session lets go (refcounted lifetime). Registry-owned Toolkits are
/// shared read-only: their ResultCache makes concurrent kernel requests
/// safe, and sessions that mutate (extract/ego) do so on private copies.

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "script/graph_provider.hpp"

namespace graphct::server {

/// Thread-safe name -> resident Toolkit map.
class GraphRegistry : public script::GraphProvider {
 public:
  /// One registry row for `graphs` listings.
  struct Info {
    std::string name;
    vid vertices = 0;
    eid edges = 0;
    /// Sessions currently holding the graph (registry's own ref excluded).
    long sessions = 0;
  };

  explicit GraphRegistry(ToolkitOptions opts = {});

  /// Load `path` (format by extension, as the CLI does) under `name`, or
  /// return the resident graph when the name is already taken. Concurrent
  /// calls for one name perform a single load; other names load in
  /// parallel. Throws graphct::Error on I/O failure.
  std::shared_ptr<Toolkit> load_graph(const std::string& name,
                                      const std::string& path) override;

  /// As load_graph(), but opening `path` as a packed (block-compressed,
  /// mmap-backed) store — the graph's adjacency stays on disk and sessions
  /// share one store and its per-thread block caches. Same load-once
  /// semantics as load_graph().
  std::shared_ptr<Toolkit> load_packed_graph(const std::string& name,
                                             const std::string& path) override;

  /// Register an already-built graph under `name` (used by tests and
  /// embedders). Throws when the name is taken.
  std::shared_ptr<Toolkit> add(const std::string& name, CsrGraph graph);

  /// The resident graph named `name`, or nullptr. Blocks if the graph is
  /// mid-load until the load completes.
  std::shared_ptr<Toolkit> get_graph(const std::string& name) override;

  /// Drop `name` from the registry. Sessions still holding the graph keep
  /// it alive; new sessions can no longer resolve it. Returns false when
  /// the name is unknown.
  bool drop(const std::string& name);

  /// All resident graphs, sorted by name. Skips entries still loading.
  [[nodiscard]] std::vector<Info> list() const;

  /// Load a graph file choosing the parser by extension: .bin (GraphCT
  /// binary), .metis/.graph (METIS), .el/.txt (edge list), anything else
  /// DIMACS. Shared with the CLI's one-shot commands.
  static CsrGraph load_graph_file(const std::string& path);

 private:
  struct Entry {
    std::shared_ptr<Toolkit> toolkit;  // null while loading
    bool failed = false;
  };

  /// Load-once core shared by load_graph()/load_packed_graph(): resolve a
  /// resident `name`, or run `build` (outside the lock) and publish its
  /// result, waking concurrent loaders of the same name.
  template <typename BuildFn>
  std::shared_ptr<Toolkit> load_once(const std::string& name, BuildFn&& build);

  ToolkitOptions opts_;
  mutable std::mutex mu_;
  mutable std::condition_variable loaded_cv_;
  std::map<std::string, std::shared_ptr<Entry>> graphs_;
};

}  // namespace graphct::server
