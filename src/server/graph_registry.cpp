#include "server/graph_registry.hpp"

#include "graph/builder.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_metis.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace graphct::server {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Caller must hold mu_. Counts only fully-loaded graphs, like list().
// Template so the private Entry type never needs naming.
template <typename Map>
void set_resident_gauge(const Map& graphs) {
  std::int64_t resident = 0;
  for (const auto& [name, entry] : graphs) {
    if (entry->toolkit) ++resident;
  }
  obs::registry().gauge("gct_graphs_resident").set(
      static_cast<double>(resident));
}

}  // namespace

CsrGraph GraphRegistry::load_graph_file(const std::string& path) {
  if (ends_with(path, ".bin")) return read_binary(path);
  GCT_CHECK(!ends_with(path, ".gctp") && !storage::GraphStore::sniff(path),
            "'" + path +
                "' is a packed graph file — use 'load packed' to open it "
                "as an mmap-backed store");
  if (ends_with(path, ".metis") || ends_with(path, ".graph")) {
    return read_metis(path);
  }
  if (ends_with(path, ".el") || ends_with(path, ".txt")) {
    return build_csr(read_edge_list(path));
  }
  // Default: DIMACS (.dimacs, .gr, anything else).
  return build_csr(read_dimacs(path));
}

GraphRegistry::GraphRegistry(ToolkitOptions opts) : opts_(opts) {}

template <typename BuildFn>
std::shared_ptr<Toolkit> GraphRegistry::load_once(const std::string& name,
                                                  BuildFn&& build) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = graphs_.find(name);
      if (it == graphs_.end()) break;
      if (it->second->toolkit) return it->second->toolkit;  // load-once
      // Another session is loading this name; wait for the outcome.
      std::shared_ptr<Entry> pending = it->second;
      loaded_cv_.wait(lock,
                      [&] { return pending->toolkit || pending->failed; });
      if (pending->toolkit) return pending->toolkit;
      // The loader failed and removed the entry — retry as the loader.
    }
    entry = std::make_shared<Entry>();
    graphs_.emplace(name, entry);
  }
  // Parse outside the lock so other names stay resolvable during long I/O.
  try {
    auto tk = build();
    std::lock_guard<std::mutex> lock(mu_);
    entry->toolkit = tk;
    set_resident_gauge(graphs_);
    loaded_cv_.notify_all();
    return tk;
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    entry->failed = true;
    auto it = graphs_.find(name);
    if (it != graphs_.end() && it->second == entry) graphs_.erase(it);
    loaded_cv_.notify_all();
    throw;
  }
}

std::shared_ptr<Toolkit> GraphRegistry::load_graph(const std::string& name,
                                                   const std::string& path) {
  return load_once(name, [&] {
    return std::make_shared<Toolkit>(load_graph_file(path), opts_);
  });
}

std::shared_ptr<Toolkit> GraphRegistry::load_packed_graph(
    const std::string& name, const std::string& path) {
  return load_once(name, [&] {
    return std::make_shared<Toolkit>(Toolkit::load_packed(path, opts_));
  });
}

std::shared_ptr<Toolkit> GraphRegistry::add(const std::string& name,
                                            CsrGraph graph) {
  auto entry = std::make_shared<Entry>();
  entry->toolkit = std::make_shared<Toolkit>(std::move(graph), opts_);
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted = graphs_.emplace(name, entry).second;
  GCT_CHECK(inserted, "registry: graph name '" + name + "' is already taken");
  set_resident_gauge(graphs_);
  return entry->toolkit;
}

std::shared_ptr<Toolkit> GraphRegistry::get_graph(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) return nullptr;
  std::shared_ptr<Entry> entry = it->second;
  loaded_cv_.wait(lock, [&] { return entry->toolkit || entry->failed; });
  return entry->toolkit;  // null when the pending load failed
}

bool GraphRegistry::drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool dropped = graphs_.erase(name) > 0;
  if (dropped) set_resident_gauge(graphs_);
  return dropped;
}

std::vector<GraphRegistry::Info> GraphRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    if (!entry->toolkit) continue;  // still loading
    Info info;
    info.name = name;
    const auto view = entry->toolkit->view();
    info.vertices = view.num_vertices();
    info.edges = view.num_edges();
    info.sessions = entry->toolkit.use_count() - 1;  // minus the registry's
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace graphct::server
