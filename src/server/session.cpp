#include "server/session.hpp"

#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace graphct::server {

namespace {

script::InterpreterOptions with_registry(script::InterpreterOptions opts,
                                         GraphRegistry& registry) {
  opts.provider = &registry;
  return opts;
}

/// First whitespace-delimited token of a protocol line.
std::string first_token(const std::string& line) {
  std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = line.find_first_of(" \t", b);
  return line.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

}  // namespace

Session::Session(std::string name, GraphRegistry& registry, JobQueue& queue,
                 script::InterpreterOptions opts)
    : name_(std::move(name)),
      registry_(registry),
      queue_(queue),
      interp_(out_, with_registry(std::move(opts), registry)) {}

std::string Session::handle_line(const std::string& line) {
  try {
    const std::string verb = first_token(line);
    if (verb.empty() || verb[0] == '#') return "ok\n";
    if (verb == "graphs") return list_graphs() + "ok\n";
    if (verb == "jobs") return list_jobs() + "ok\n";
    if (verb == "session") {
      std::ostringstream s;
      const std::string key = interp_.current_graph_key();
      s << "session " << name_ << ": stack depth " << interp_.stack_depth()
        << ", graph " << (key.empty() ? "(private)" : key) << ", threads "
        << (interp_.requested_threads() == 0
                ? "default"
                : std::to_string(interp_.requested_threads()))
        << "\n";
      return s.str() + "ok\n";
    }
    if (verb == "metrics") {
      // Read-only and cheap: answered inline, never queued behind jobs.
      // `metrics` / `metrics prom` -> Prometheus text exposition;
      // `metrics json` -> a single JSON line. Neither format emits lines
      // starting with "ok"/"error", so the line protocol stays parseable.
      const auto snap = obs::registry().snapshot();
      const std::size_t pos = line.find("json");
      if (pos != std::string::npos) {
        return snap.to_json() + "\nok\n";
      }
      return snap.to_prometheus() + "ok\n";
    }
    if (verb == "cancel") {
      const std::string arg = first_token(line.substr(line.find(verb) + 6));
      const std::uint64_t id = std::stoull(arg);
      if (queue_.cancel(id)) {
        return "job " + arg + " cancelled\nok\n";
      }
      return "error job " + arg + " is not cancellable (not queued)\n";
    }
    return run_command(line);
  } catch (const std::exception& e) {
    return std::string("error ") + e.what() + "\n";
  }
}

std::string Session::run_command(const std::string& line) {
  // Serialize on the registry graph when one is current; otherwise on the
  // session itself, so a session's private-graph jobs never interleave.
  std::string key = interp_.current_graph_key();
  if (key.empty()) key = "session:" + name_;

  const std::uint64_t id = queue_.submit(
      name_, key, line,
      [this, line](JobCounters& counters) -> std::string {
        out_.str("");
        out_.clear();
        Toolkit* before_tk = interp_.current_or_null();
        const ResultCache::Stats before =
            before_tk ? before_tk->cache_stats() : ResultCache::Stats{};
        interp_.run(line);
        // Cache accounting: meaningful when the command ran kernels on the
        // graph that is still current. Commands that switch graphs
        // (read/load/use/...) report zero traffic.
        Toolkit* after_tk = interp_.current_or_null();
        if (after_tk != nullptr && after_tk == before_tk) {
          const ResultCache::Stats after = after_tk->cache_stats();
          counters.cache_hits = after.hits - before.hits;
          counters.cache_misses = after.misses - before.misses;
        }
        return out_.str();
      },
      interp_.requested_threads());

  const JobRecord record = queue_.wait(id);
  if (record.state == JobState::kFailed) {
    return record.output + "error " + record.error + "\n";
  }
  if (record.state == JobState::kCancelled) {
    return "error job " + std::to_string(id) + " cancelled: " + record.error +
           "\n";
  }
  std::ostringstream ok;
  ok << record.output << "ok job=" << record.id << " graph=" << record.graph_key
     << " wall=" << format_duration(record.run_seconds)
     << " queue=" << format_duration(record.wait_seconds)
     << " threads=" << record.threads << " cache=" << record.counters.cache_hits
     << "/" << record.counters.cache_misses << "\n";
  return ok.str();
}

std::string Session::list_graphs() const {
  const auto graphs = registry_.list();
  if (graphs.empty()) return "no graphs resident (see 'load graph')\n";
  TextTable t({"name", "vertices", "edges", "sessions"});
  for (const auto& g : graphs) {
    t.add_row({g.name, with_commas(g.vertices), with_commas(g.edges),
               std::to_string(g.sessions)});
  }
  return t.render();
}

std::string Session::list_jobs() const {
  const auto jobs = queue_.snapshot();
  if (jobs.empty()) return "no jobs\n";
  TextTable t({"id", "session", "graph", "state", "command", "wall", "cache"});
  for (const auto& j : jobs) {
    t.add_row({std::to_string(j.id), j.session, j.graph_key,
               to_string(j.state), j.command, format_duration(j.run_seconds),
               std::to_string(j.counters.cache_hits) + "/" +
                   std::to_string(j.counters.cache_misses)});
  }
  return t.render();
}

}  // namespace graphct::server
