#include "server/session.hpp"

#include <future>
#include <utility>

#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace graphct::server {

namespace {

script::InterpreterOptions with_registry(script::InterpreterOptions opts,
                                         GraphRegistry& registry) {
  opts.provider = &registry;
  return opts;
}

/// First whitespace-delimited token of a protocol line.
std::string first_token(const std::string& line) {
  std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = line.find_first_of(" \t", b);
  return line.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

/// Split a leading `@<id>` request-id prefix off `line`. Returns the id
/// ("" when absent) and leaves `rest` holding the command proper.
std::string split_request_id(const std::string& line, std::string& rest) {
  const std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string::npos || line[b] != '@') {
    rest = line;
    return "";
  }
  std::size_t e = line.find_first_of(" \t", b);
  if (e == std::string::npos) e = line.size();
  std::string id = line.substr(b + 1, e - b - 1);
  const std::size_t r = line.find_first_not_of(" \t", e);
  rest = r == std::string::npos ? "" : line.substr(r);
  return id;
}

}  // namespace

Session::Session(std::string name, GraphRegistry& registry, JobQueue& queue,
                 script::InterpreterOptions opts)
    : name_(std::move(name)),
      registry_(registry),
      queue_(queue),
      interp_(out_, with_registry(std::move(opts), registry)) {}

std::string Session::format_reply(const Reply& reply,
                                  const std::string& request_id,
                                  Protocol protocol) const {
  // Rendering for both framings lives in util/framing; the session only
  // maps its protocol selection onto it.
  return framing::render_text_reply(reply, request_id,
                                    protocol == Protocol::kCompat
                                        ? framing::TextProtocol::kCompat
                                        : framing::TextProtocol::kFramedV1);
}

std::string Session::handle_line(const std::string& line) {
  std::promise<std::string> done;
  auto response = done.get_future();
  dispatch(line,
           [&done](std::string text) { done.set_value(std::move(text)); });
  return response.get();
}

std::string Session::shed_reply(const std::string& line,
                                const std::string& reason) const {
  std::string command;
  const std::string request_id = split_request_id(line, command);
  Reply reply;
  reply.status = Reply::Status::kBusy;
  reply.message = reason;
  return format_reply(reply, request_id, protocol_);
}

std::string Session::handle_proto(const std::string& args,
                                  const std::string& request_id) {
  // The response to `proto` is rendered in the framing that was active
  // when the command arrived, so a client can always parse the ack with
  // the parser it used to send the request.
  const Protocol before = protocol_;
  const std::string arg = first_token(args);
  Reply reply;
  if (arg.empty()) {
    reply.payload = std::string("proto ") +
                    (protocol_ == Protocol::kCompat ? "compat" : "v1") + "\n";
  } else if (arg == "v1") {
    protocol_ = Protocol::kFramedV1;
    reply.payload = "protocol set to gct/1 framed\n";
  } else if (arg == "compat") {
    protocol_ = Protocol::kCompat;
    reply.payload = "protocol set to compat\n";
  } else {
    reply.status = Reply::Status::kError;
    reply.message = "proto: expected 'v1' or 'compat' (got '" + arg + "')";
  }
  return format_reply(reply, request_id, before);
}

void Session::dispatch(const std::string& line, Done done) {
  std::string request_id;
  std::string command;
  Protocol protocol = protocol_;
  try {
    request_id = split_request_id(line, command);
    const std::string verb = first_token(command);
    Reply reply;
    if (verb.empty() || verb[0] == '#') {
      done(format_reply(reply, request_id, protocol));
      return;
    }
    if (verb == "proto") {
      const std::size_t at = command.find(verb);
      done(handle_proto(command.substr(at + verb.size()), request_id));
      return;
    }
    if (verb == "graphs") {
      reply.payload = list_graphs();
      done(format_reply(reply, request_id, protocol));
      return;
    }
    if (verb == "jobs") {
      reply.payload = list_jobs();
      done(format_reply(reply, request_id, protocol));
      return;
    }
    if (verb == "session") {
      std::ostringstream s;
      const std::string key = interp_.current_graph_key();
      s << "session " << name_ << ": stack depth " << interp_.stack_depth()
        << ", graph " << (key.empty() ? "(private)" : key) << ", threads "
        << (interp_.requested_threads() == 0
                ? "default"
                : std::to_string(interp_.requested_threads()))
        << ", proto "
        << (protocol_ == Protocol::kCompat ? "compat" : "v1") << "\n";
      reply.payload = s.str();
      done(format_reply(reply, request_id, protocol));
      return;
    }
    if (verb == "metrics") {
      // Read-only and cheap: answered inline, never queued behind jobs.
      // `metrics` / `metrics prom` -> Prometheus text exposition;
      // `metrics json` -> a single JSON line. Neither format emits lines
      // starting with "ok"/"error", so the compat framing stays parseable.
      const auto snap = obs::registry().snapshot();
      if (command.find("json") != std::string::npos) {
        reply.payload = snap.to_json() + "\n";
      } else {
        reply.payload = snap.to_prometheus();
      }
      done(format_reply(reply, request_id, protocol));
      return;
    }
    if (verb == "cancel") {
      const std::size_t at = command.find(verb);
      const std::string arg = first_token(command.substr(at + verb.size()));
      const std::uint64_t id = std::stoull(arg);
      if (queue_.cancel(id)) {
        reply.payload = "job " + arg + " cancelled\n";
        done(format_reply(reply, request_id, protocol));
      } else {
        reply.status = Reply::Status::kError;
        reply.message = "job " + arg + " is not cancellable (not queued)";
        done(format_reply(reply, request_id, protocol));
      }
      return;
    }
    run_command(command, request_id, protocol, done);
  } catch (const std::exception& e) {
    Reply reply;
    reply.status = Reply::Status::kError;
    reply.message = e.what();
    done(format_reply(reply, request_id, protocol));
  }
}

void Session::run_command(const std::string& line,
                          const std::string& request_id, Protocol protocol,
                          const Done& done) {
  // Serialize on the registry graph when one is current; otherwise on the
  // session itself, so a session's private-graph jobs never interleave.
  std::string key = interp_.current_graph_key();
  if (key.empty()) key = "session:" + name_;

  const auto result = queue_.try_submit(
      name_, key, line,
      [this, line](JobCounters& counters) -> std::string {
        out_.str("");
        out_.clear();
        Toolkit* before_tk = interp_.current_or_null();
        const ResultCache::Stats before =
            before_tk ? before_tk->cache_stats() : ResultCache::Stats{};
        interp_.run(line);
        // Cache accounting: meaningful when the command ran kernels on the
        // graph that is still current. Commands that switch graphs
        // (read/load/use/...) report zero traffic.
        Toolkit* after_tk = interp_.current_or_null();
        if (after_tk != nullptr && after_tk == before_tk) {
          const ResultCache::Stats after = after_tk->cache_stats();
          counters.cache_hits = after.hits - before.hits;
          counters.cache_misses = after.misses - before.misses;
        }
        return out_.str();
      },
      interp_.requested_threads(),
      [this, request_id, protocol, done](const JobRecord& record) {
        Reply reply;
        if (record.state == JobState::kFailed) {
          reply.status = Reply::Status::kError;
          reply.payload = record.output;
          reply.message = record.error;
        } else if (record.state == JobState::kCancelled) {
          reply.status = Reply::Status::kError;
          reply.message = "job " + std::to_string(record.id) +
                          " cancelled: " + record.error;
        } else {
          std::ostringstream acct;
          acct << " job=" << record.id << " graph=" << record.graph_key
               << " wall=" << format_duration(record.run_seconds)
               << " queue=" << format_duration(record.wait_seconds)
               << " threads=" << record.threads
               << " cache=" << record.counters.cache_hits << "/"
               << record.counters.cache_misses;
          reply.payload = record.output;
          reply.accounting = acct.str();
        }
        done(format_reply(reply, request_id, protocol));
      });

  if (result.admission != Admission::kAdmitted) {
    Reply reply;
    reply.status = Reply::Status::kBusy;
    reply.message = std::string(to_string(result.admission)) +
                    ", retry later (queued=" +
                    std::to_string(queue_.queued()) + ")";
    done(format_reply(reply, request_id, protocol));
  }
}

std::string Session::list_graphs() const {
  const auto graphs = registry_.list();
  if (graphs.empty()) return "no graphs resident (see 'load graph')\n";
  TextTable t({"name", "vertices", "edges", "sessions"});
  for (const auto& g : graphs) {
    t.add_row({g.name, with_commas(g.vertices), with_commas(g.edges),
               std::to_string(g.sessions)});
  }
  return t.render();
}

std::string Session::list_jobs() const {
  const auto jobs = queue_.snapshot();
  if (jobs.empty()) return "no jobs\n";
  TextTable t({"id", "session", "graph", "state", "command", "wall", "cache"});
  for (const auto& j : jobs) {
    t.add_row({std::to_string(j.id), j.session, j.graph_key,
               to_string(j.state), j.command, format_duration(j.run_seconds),
               std::to_string(j.counters.cache_hits) + "/" +
                   std::to_string(j.counters.cache_misses)});
  }
  return t.render();
}

}  // namespace graphct::server
