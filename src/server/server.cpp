#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace graphct::server {

namespace {

constexpr const char* kBanner = "graphctd ready\n";

/// Refuse to buffer a single line beyond this (a sane protocol line is a
/// few hundred bytes; a megabyte without '\n' is a confused client).
constexpr std::size_t kMaxLineBytes = 1 << 20;

bool is_quit(const std::string& line) {
  return line == "quit" || line == "exit";
}

/// Strip a trailing '\r' (telnet/CRLF clients).
std::string strip_cr(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

ServerOptions resolve(ServerOptions o) {
  if (o.workers < 1) o.workers = 1;
  // One flag governs every graph's kernel cache: the server limit wins
  // over whatever the interpreter options carried.
  if (o.limits.cache_budget_bytes != 0) {
    o.interpreter.toolkit.cache_budget_bytes = o.limits.cache_budget_bytes;
  }
  return o;
}

obs::Gauge& connections_gauge() {
  static obs::Gauge& g = obs::registry().gauge("gct_server_connections");
  return g;
}

obs::Counter& refused_counter() {
  static obs::Counter& c =
      obs::registry().counter("gct_server_connections_refused_total");
  return c;
}

obs::Counter& pipeline_shed_counter() {
  static obs::Counter& c =
      obs::registry().counter("gct_server_pipeline_shed_total");
  return c;
}

/// One TCP connection's state, owned by the event loop. `gen` is the
/// connection's identity for completions: fds are recycled by the kernel,
/// generations never are, so a job finishing after its connection died
/// cannot write into an unrelated one.
struct Conn {
  int fd = -1;
  std::uint64_t gen = 0;
  std::shared_ptr<Session> session;
  std::string in;                  ///< bytes read, not yet line-split
  std::deque<std::string> lines;   ///< complete lines awaiting dispatch
  std::string out;                 ///< bytes to write
  bool dispatching = false;        ///< one command in flight at a time
  bool want_write = false;         ///< EPOLLOUT currently registered
  bool quit_after_flush = false;   ///< close once `out` drains
  std::chrono::steady_clock::time_point last_activity;
};

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(resolve(std::move(opts))),
      registry_(opts_.interpreter.toolkit),
      queue_(opts_.workers, QueueLimits{opts_.limits.max_queued_jobs,
                                        opts_.limits.max_queued_per_session}) {}

Server::~Server() {
  request_stop();
  queue_.shutdown();
}

std::shared_ptr<Session> Server::open_session(std::string name) {
  if (name.empty()) {
    name = "s" + std::to_string(next_session_.fetch_add(1));
  }
  return std::make_shared<Session>(std::move(name), registry_, queue_,
                                   opts_.interpreter);
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  auto session = open_session();
  out << kBanner << std::flush;
  std::string line;
  while (std::getline(in, line)) {
    line = strip_cr(line);
    if (is_quit(line)) break;
    out << session->handle_line(line) << std::flush;
  }
}

void Server::post_completion(std::uint64_t conn_gen, std::string text) {
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    completions_.push_back(Completion{conn_gen, std::move(text)});
  }
  const int efd = wake_fd_.load();
  if (efd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(efd, &one, sizeof(one));
  }
}

int Server::serve_tcp(int port, const std::function<void()>& on_listening) {
  using Clock = std::chrono::steady_clock;
  const ServerLimits& limits = opts_.limits;

  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  GCT_CHECK(lfd >= 0, "serve: cannot create socket");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(lfd, 128) != 0) {
    ::close(lfd);
    throw Error("serve: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_port_.store(ntohs(bound.sin_port));
    }
  }

  const int epfd = ::epoll_create1(0);
  const int efd = ::eventfd(0, EFD_NONBLOCK);
  if (epfd < 0 || efd < 0) {
    if (epfd >= 0) ::close(epfd);
    if (efd >= 0) ::close(efd);
    ::close(lfd);
    throw Error("serve: cannot create epoll/eventfd");
  }
  auto add_fd = [&](int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  };
  add_fd(lfd, EPOLLIN);
  add_fd(efd, EPOLLIN);
  wake_fd_.store(efd);

  std::map<std::uint64_t, Conn> conns;
  std::unordered_map<int, std::uint64_t> fd_gen;
  std::uint64_t next_gen = 1;

  auto set_writable = [&](Conn& c, bool on) {
    if (c.want_write == on) return;
    c.want_write = on;
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev);
  };

  auto close_conn = [&](std::uint64_t gen) {
    auto it = conns.find(gen);
    if (it == conns.end()) return;
    fd_gen.erase(it->second.fd);
    ::close(it->second.fd);  // also removes the fd from the epoll set
    conns.erase(it);
    connections_gauge().add(-1.0);
  };

  /// Write what we can; returns false when the socket is dead.
  auto flush = [&](Conn& c) -> bool {
    while (!c.out.empty()) {
      const ssize_t n =
          ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c.out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    set_writable(c, !c.out.empty());
    return true;
  };

  /// Split buffered input into lines (shedding overflow), start the next
  /// dispatch if the connection is free, flush, and close when finished.
  auto pump = [&](std::uint64_t gen) {
    auto it = conns.find(gen);
    if (it == conns.end()) return;
    Conn& c = it->second;

    std::size_t nl;
    while ((nl = c.in.find('\n')) != std::string::npos) {
      std::string line = strip_cr(c.in.substr(0, nl));
      c.in.erase(0, nl + 1);
      const int cap = limits.max_queued_per_session;
      if (cap > 0 && static_cast<int>(c.lines.size()) >= cap) {
        // Pipelining backlog full: shed before the job queue ever sees
        // the line, so one firehosing client costs O(cap) memory.
        pipeline_shed_counter().add();
        c.out += c.session->shed_reply(line, "connection backlog full");
        continue;
      }
      c.lines.push_back(std::move(line));
    }
    if (c.in.size() > kMaxLineBytes) {
      c.out += "error protocol line exceeds " +
               std::to_string(kMaxLineBytes) + " bytes\n";
      c.quit_after_flush = true;
      c.lines.clear();
    }

    if (!c.dispatching && !c.quit_after_flush && !c.lines.empty() &&
        !stopping_.load()) {
      std::string line = std::move(c.lines.front());
      c.lines.pop_front();
      if (is_quit(line)) {
        c.quit_after_flush = true;
      } else {
        c.dispatching = true;
        c.last_activity = Clock::now();
        // The Done closure owns the session: a connection may die while
        // its job runs, and the worker still needs the interpreter alive.
        auto session = c.session;
        session->dispatch(line, [this, gen, session](std::string text) {
          post_completion(gen, std::move(text));
        });
      }
    }

    if (!flush(c)) {
      close_conn(gen);
      return;
    }
    if (c.quit_after_flush && c.out.empty() && !c.dispatching) {
      close_conn(gen);
    }
  };

  auto do_accept = [&]() {
    for (;;) {
      const int cfd = ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK);
      if (cfd < 0) break;
      if (stopping_.load()) {
        ::close(cfd);
        continue;
      }
      if (limits.max_connections > 0 &&
          static_cast<int>(conns.size()) >= limits.max_connections) {
        refused_counter().add();
        static const std::string refusal =
            "error server at connection capacity, retry later\n";
        [[maybe_unused]] const ssize_t n =
            ::send(cfd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
        ::close(cfd);
        continue;
      }
      const std::uint64_t gen = next_gen++;
      Conn c;
      c.fd = cfd;
      c.gen = gen;
      c.session = open_session();
      c.out = kBanner;
      c.last_activity = Clock::now();
      fd_gen.emplace(cfd, gen);
      auto [it, inserted] = conns.emplace(gen, std::move(c));
      add_fd(cfd, EPOLLIN);
      connections_gauge().add(1.0);
      if (!flush(it->second)) close_conn(gen);
    }
  };

  auto do_read = [&](std::uint64_t gen) {
    auto it = conns.find(gen);
    if (it == conns.end()) return;
    Conn& c = it->second;
    char chunk[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c.in.append(chunk, static_cast<std::size_t>(n));
        c.last_activity = Clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(gen);  // EOF or error; in-flight jobs are gen-guarded
      return;
    }
    pump(gen);
  };

  auto drain_completions = [&]() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(comp_mu_);
      batch.swap(completions_);
    }
    for (auto& comp : batch) {
      auto it = conns.find(comp.conn_gen);
      if (it == conns.end()) continue;  // connection died first
      Conn& c = it->second;
      c.out += comp.text;
      c.dispatching = false;
      c.last_activity = Clock::now();
      pump(comp.conn_gen);
    }
  };

  const bool have_timeouts =
      limits.read_timeout_seconds > 0 || limits.idle_timeout_seconds > 0;
  auto scan_timeouts = [&]() {
    const auto t = Clock::now();
    std::vector<std::uint64_t> victims;
    for (auto& [gen, c] : conns) {
      const double idle =
          std::chrono::duration<double>(t - c.last_activity).count();
      const bool quiescent =
          !c.dispatching && c.lines.empty() && c.out.empty();
      if (limits.read_timeout_seconds > 0 && !c.in.empty() &&
          idle > limits.read_timeout_seconds) {
        victims.push_back(gen);
      } else if (limits.idle_timeout_seconds > 0 && quiescent &&
                 c.in.empty() && idle > limits.idle_timeout_seconds) {
        victims.push_back(gen);
      }
    }
    for (const auto gen : victims) close_conn(gen);
  };

  if (on_listening) on_listening();

  epoll_event events[64];
  while (!stopping_.load()) {
    const int n = ::epoll_wait(epfd, events, 64, have_timeouts ? 500 : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == lfd) {
        do_accept();
        continue;
      }
      if (fd == efd) {
        std::uint64_t drained;
        while (::read(efd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto g = fd_gen.find(fd);
      if (g == fd_gen.end()) continue;  // closed earlier this batch
      const std::uint64_t gen = g->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(gen);
        continue;
      }
      if (events[i].events & EPOLLOUT) pump(gen);
      if (events[i].events & EPOLLIN) do_read(gen);
    }
    drain_completions();
    if (have_timeouts) scan_timeouts();
  }

  // Deterministic stop: stop accepting, cancel jobs that never started
  // (their completions deliver "cancelled" responses), then keep the loop
  // alive just long enough to flush responses for jobs that were already
  // running. Connections are closed at the deadline regardless; the gen
  // guard drops any response that finishes later.
  ::close(lfd);
  bound_port_.store(0);
  queue_.cancel_pending();
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             limits.drain_timeout_seconds));
  auto in_flight = [&]() {
    for (const auto& [gen, c] : conns) {
      if (c.dispatching || !c.out.empty()) return true;
    }
    return false;
  };
  while (in_flight() && Clock::now() < deadline) {
    const int n = ::epoll_wait(epfd, events, 64, 50);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == efd) {
        std::uint64_t drained;
        while (::read(efd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == lfd) continue;
      auto g = fd_gen.find(fd);
      if (g == fd_gen.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(g->second);
      } else if (events[i].events & EPOLLOUT) {
        pump(g->second);
      }
    }
    drain_completions();
  }
  while (!conns.empty()) close_conn(conns.begin()->first);
  wake_fd_.store(-1);
  ::close(efd);
  ::close(epfd);
  return 0;
}

void Server::request_stop() {
  stopping_.store(true);
  const int efd = wake_fd_.load();
  if (efd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(efd, &one, sizeof(one));
  }
}

}  // namespace graphct::server
