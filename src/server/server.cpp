#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace graphct::server {

namespace {

constexpr const char* kBanner = "graphctd ready\n";

bool is_quit(const std::string& line) {
  return line == "quit" || line == "exit";
}

/// Strip a trailing '\r' (telnet/CRLF clients).
std::string strip_cr(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts), registry_(opts.interpreter.toolkit), queue_(opts.workers) {}

Server::~Server() {
  request_stop();
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  queue_.shutdown();
}

std::shared_ptr<Session> Server::open_session(std::string name) {
  if (name.empty()) {
    name = "s" + std::to_string(next_session_.fetch_add(1));
  }
  return std::make_shared<Session>(std::move(name), registry_, queue_,
                                   opts_.interpreter);
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  auto session = open_session();
  out << kBanner << std::flush;
  std::string line;
  while (std::getline(in, line)) {
    line = strip_cr(line);
    if (is_quit(line)) break;
    out << session->handle_line(line) << std::flush;
  }
}

int Server::serve_tcp(int port, const std::function<void()>& on_listening) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GCT_CHECK(fd >= 0, "serve: cannot create socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw Error("serve: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  listen_fd_.store(fd);
  if (on_listening) on_listening();

  while (!stopping_.load()) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load()) break;
      continue;  // transient accept failure
    }
    connections_.emplace_back([this, conn] {
      auto session = open_session();
      write_all(conn, kBanner);
      std::string buffer;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        bool closed = false;
        while ((nl = buffer.find('\n')) != std::string::npos) {
          const std::string line = strip_cr(buffer.substr(0, nl));
          buffer.erase(0, nl + 1);
          if (is_quit(line)) {
            closed = true;
            break;
          }
          if (!write_all(conn, session->handle_line(line))) {
            closed = true;
            break;
          }
        }
        if (closed) break;
      }
      ::close(conn);
    });
  }

  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) ::close(lfd);
  return 0;
}

void Server::request_stop() {
  stopping_.store(true);
  // Closing the listening socket unblocks accept().
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace graphct::server
