#pragma once

/// \file job_queue.hpp
/// Worker pool executing analyst commands: serialized per graph, fair per
/// session, bounded per server.
///
/// graphctd's concurrency model: every protocol command becomes a job.
/// Jobs against the *same* graph run one at a time — kernels share the
/// graph's ResultCache, so running them back-to-back maximizes hits and
/// bounds peak memory — while jobs against *different* graphs run
/// concurrently on the worker pool.
///
/// Scheduling is round-robin across sessions rather than FIFO arrival
/// order: a session that bursts fifty commands cannot starve everyone
/// else, because each scheduling decision takes the next runnable job from
/// the next session in rotation (jobs within one session stay FIFO, which
/// also preserves per-graph submission order inside a session).
///
/// Admission is bounded: QueueLimits caps the queued backlog globally and
/// per session, and try_submit() *sheds* (returns a busy verdict without
/// enqueueing) rather than queueing without limit — the transport turns
/// that into an explicit `busy` response instead of unbounded latency.
///
/// Each job records queue wait, run wall-clock, the OpenMP thread count it
/// ran with, and the cache hit/miss delta it caused; the protocol's
/// terminating "ok" line reports these so an analyst can see a repeated
/// query being served from cache.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace graphct::server {

/// Lifecycle of a job.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] const char* to_string(JobState s);

/// Per-job accounting, filled in by the work function.
struct JobCounters {
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
};

/// Everything known about one job; snapshot semantics (a copy).
struct JobRecord {
  std::uint64_t id = 0;
  std::string session;    ///< submitting session's name
  std::string graph_key;  ///< serialization key ("" = never serialized)
  std::string command;    ///< display text of the command
  JobState state = JobState::kQueued;
  std::string output;     ///< command output (valid when done)
  std::string error;      ///< failure message (valid when failed)
  double wait_seconds = 0.0;  ///< time spent queued
  double run_seconds = 0.0;   ///< execution wall-clock
  int threads = 0;            ///< OpenMP threads the job ran with
  JobCounters counters;       ///< kernel-cache traffic caused by the job

  [[nodiscard]] bool terminal() const {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
};

/// Admission-control bounds (0 = unlimited, the embedder-friendly
/// default; the server passes its ServerLimits values).
struct QueueLimits {
  int max_queued = 0;              ///< global queued-job bound
  int max_queued_per_session = 0;  ///< per-session queued-job bound
};

/// Verdict of try_submit(): admitted, or shed with a reason.
enum class Admission {
  kAdmitted,
  kShedQueueFull,    ///< global max_queued reached
  kShedSessionFull,  ///< submitting session's backlog is full
  kShedShutdown,     ///< queue is shutting down
};

[[nodiscard]] const char* to_string(Admission a);

/// Fixed worker pool with per-graph serialization, per-session fairness,
/// and bounded admission.
class JobQueue {
 public:
  /// A job: runs on a worker thread, returns the command's output text,
  /// throws graphct::Error (or any std::exception) to fail the job.
  using Work = std::function<std::string(JobCounters&)>;

  /// Completion hook: invoked exactly once with the terminal record, from
  /// the worker that finished the job or the thread that cancelled it,
  /// never while queue locks are held.
  using OnTerminal = std::function<void(const JobRecord&)>;

  struct SubmitResult {
    Admission admission = Admission::kAdmitted;
    std::uint64_t id = 0;  ///< valid when admitted
  };

  /// Start `num_workers` worker threads (minimum 1), unbounded admission.
  explicit JobQueue(int num_workers) : JobQueue(num_workers, QueueLimits{}) {}

  /// Start `num_workers` worker threads with admission bounds.
  JobQueue(int num_workers, QueueLimits limits);

  /// Drains nothing: shuts down immediately; queued jobs are cancelled and
  /// running jobs are joined.
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue a job, bypassing admission limits (compat path; also used by
  /// trusted in-process embedders). Jobs with the same non-empty
  /// `graph_key` execute serially; within a session, FIFO. `threads` > 0
  /// pins the job's OpenMP parallelism. Returns the job id.
  std::uint64_t submit(std::string session, std::string graph_key,
                       std::string command, Work work, int threads = 0);

  /// Enqueue a job subject to admission limits. Sheds (without creating a
  /// job record) when the global or per-session backlog is full or the
  /// queue is shutting down; `on_terminal`, when set, fires exactly once
  /// with the terminal record of an admitted job — including jobs
  /// cancelled by shutdown — so event-driven transports never wait on a
  /// job that cannot finish.
  SubmitResult try_submit(std::string session, std::string graph_key,
                          std::string command, Work work, int threads = 0,
                          OnTerminal on_terminal = {});

  /// Block until the job reaches a terminal state; returns its record.
  JobRecord wait(std::uint64_t id);

  /// Cancel a job that is still queued. Running jobs are not interrupted
  /// (kernels are not preemptible); returns false for running/terminal/
  /// unknown jobs.
  bool cancel(std::uint64_t id);

  /// Cancel every queued job ("server stopping"); returns how many were
  /// cancelled. Running jobs keep running — pair with drain().
  int cancel_pending();

  /// Wait until no job is queued or running, or `timeout_seconds` elapses.
  /// Returns true when the queue drained in time.
  bool drain(double timeout_seconds);

  /// Snapshot one job, or nullopt for an unknown id.
  [[nodiscard]] std::optional<JobRecord> get(std::uint64_t id) const;

  /// Snapshot every job, id order (terminal jobs are retained as history).
  [[nodiscard]] std::vector<JobRecord> snapshot() const;

  /// Queued (not yet running) jobs right now.
  [[nodiscard]] int queued() const;

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(workers_.size());
  }

  [[nodiscard]] const QueueLimits& limits() const { return limits_; }

  /// Stop accepting work, cancel queued jobs, join workers (idempotent).
  void shutdown();

 private:
  struct Internal;

  void worker_loop();
  /// Pop the next runnable job id, rotating session order for fairness;
  /// requires mu_ held. Returns 0 when nothing is runnable.
  std::uint64_t take_runnable_locked();
  /// Remove `id` from its session's pending deque; requires mu_ held.
  void unqueue_locked(const std::shared_ptr<Internal>& job);
  std::uint64_t enqueue(std::string session, std::string graph_key,
                        std::string command, Work work, int threads,
                        OnTerminal on_terminal);

  QueueLimits limits_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;      // workers: new runnable work
  std::condition_variable terminal_cv_;  // waiters: a job finished
  std::map<std::uint64_t, std::shared_ptr<Internal>> jobs_;
  /// Queued jobs grouped by session (FIFO within a session)...
  std::map<std::string, std::deque<std::uint64_t>> pending_by_session_;
  /// ...scheduled round-robin in this rotation (front = next to inspect).
  std::deque<std::string> rotation_;
  std::size_t pending_total_ = 0;
  int running_ = 0;
  std::set<std::string> busy_graphs_;
  std::uint64_t next_id_ = 1;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace graphct::server
