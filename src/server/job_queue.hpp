#pragma once

/// \file job_queue.hpp
/// Worker pool executing analyst commands, serialized per graph.
///
/// graphctd's concurrency model: every protocol command becomes a job.
/// Jobs against the *same* graph run one at a time in submission order —
/// kernels share the graph's ResultCache, so running them back-to-back
/// maximizes hits and bounds peak memory — while jobs against *different*
/// graphs run concurrently on the worker pool, which is how two analyst
/// sessions on two graphs both make progress. Each job records queue wait,
/// run wall-clock, the OpenMP thread count it ran with, and the cache
/// hit/miss delta it caused; the protocol's terminating "ok" line reports
/// these so an analyst can see a repeated query being served from cache.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace graphct::server {

/// Lifecycle of a job.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] const char* to_string(JobState s);

/// Per-job accounting, filled in by the work function.
struct JobCounters {
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
};

/// Everything known about one job; snapshot semantics (a copy).
struct JobRecord {
  std::uint64_t id = 0;
  std::string session;    ///< submitting session's name
  std::string graph_key;  ///< serialization key ("" = never serialized)
  std::string command;    ///< display text of the command
  JobState state = JobState::kQueued;
  std::string output;     ///< command output (valid when done)
  std::string error;      ///< failure message (valid when failed)
  double wait_seconds = 0.0;  ///< time spent queued
  double run_seconds = 0.0;   ///< execution wall-clock
  int threads = 0;            ///< OpenMP threads the job ran with
  JobCounters counters;       ///< kernel-cache traffic caused by the job

  [[nodiscard]] bool terminal() const {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
};

/// Fixed worker pool with per-graph serialization.
class JobQueue {
 public:
  /// A job: runs on a worker thread, returns the command's output text,
  /// throws graphct::Error (or any std::exception) to fail the job.
  using Work = std::function<std::string(JobCounters&)>;

  /// Start `num_workers` worker threads (minimum 1).
  explicit JobQueue(int num_workers);

  /// Drains nothing: shuts down immediately; queued jobs are cancelled and
  /// running jobs are joined.
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue a job. Jobs with the same non-empty `graph_key` execute one at
  /// a time in submission order; jobs with distinct (or empty) keys run
  /// concurrently, pool permitting. `threads` > 0 pins the job's OpenMP
  /// parallelism. Returns the job id.
  std::uint64_t submit(std::string session, std::string graph_key,
                       std::string command, Work work, int threads = 0);

  /// Block until the job reaches a terminal state; returns its record.
  JobRecord wait(std::uint64_t id);

  /// Cancel a job that is still queued. Running jobs are not interrupted
  /// (kernels are not preemptible); returns false for running/terminal/
  /// unknown jobs.
  bool cancel(std::uint64_t id);

  /// Snapshot one job, or nullopt for an unknown id.
  [[nodiscard]] std::optional<JobRecord> get(std::uint64_t id) const;

  /// Snapshot every job, id order (terminal jobs are retained as history).
  [[nodiscard]] std::vector<JobRecord> snapshot() const;

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(workers_.size());
  }

  /// Stop accepting work, cancel queued jobs, join workers (idempotent).
  void shutdown();

 private:
  struct Internal;

  void worker_loop();
  /// Find the first pending job whose graph is idle; requires mu_ held.
  std::deque<std::uint64_t>::iterator next_runnable();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      // workers: new runnable work
  std::condition_variable terminal_cv_;  // waiters: a job finished
  std::map<std::uint64_t, std::shared_ptr<Internal>> jobs_;
  std::deque<std::uint64_t> pending_;  // submission order
  std::set<std::string> busy_graphs_;
  std::uint64_t next_id_ = 1;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace graphct::server
