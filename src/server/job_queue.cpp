#include "server/job_queue.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace graphct::server {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

struct JobQueue::Internal {
  JobRecord record;
  Work work;
  int threads = 0;
  Timer queued_at;  // measures queue wait
};

JobQueue::JobQueue(int num_workers) {
  const int n = std::max(1, num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobQueue::~JobQueue() { shutdown(); }

std::uint64_t JobQueue::submit(std::string session, std::string graph_key,
                               std::string command, Work work, int threads) {
  auto job = std::make_shared<Internal>();
  job->work = std::move(work);
  job->threads = threads;
  job->record.session = std::move(session);
  job->record.graph_key = std::move(graph_key);
  job->record.command = std::move(command);
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    job->record.id = id;
    if (shutdown_) {
      job->record.state = JobState::kCancelled;
      job->record.error = "server shutting down";
      jobs_.emplace(id, std::move(job));
      return id;
    }
    jobs_.emplace(id, job);
    pending_.push_back(id);
  }
  work_cv_.notify_one();
  return id;
}

std::deque<std::uint64_t>::iterator JobQueue::next_runnable() {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    const auto& job = jobs_.at(*it);
    if (job->record.graph_key.empty() ||
        busy_graphs_.count(job->record.graph_key) == 0) {
      return it;
    }
  }
  return pending_.end();
}

void JobQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = next_runnable();
    if (it == pending_.end()) {
      if (shutdown_) return;
      work_cv_.wait(lock);
      continue;
    }
    const std::uint64_t id = *it;
    pending_.erase(it);
    std::shared_ptr<Internal> job = jobs_.at(id);
    job->record.state = JobState::kRunning;
    job->record.wait_seconds = job->queued_at.seconds();
    if (!job->record.graph_key.empty()) {
      busy_graphs_.insert(job->record.graph_key);
    }
    lock.unlock();

    // Pin this worker's OpenMP parallelism for the job, then restore the
    // default — omp_set_num_threads is per calling thread, so concurrent
    // jobs on other workers are unaffected.
    if (job->threads > 0) set_num_threads(job->threads);
    std::string output;
    std::string error;
    bool failed = false;
    JobCounters counters;
    Timer run_timer;
    // Record what the OpenMP runtime will actually deliver, not what the
    // session requested — the two differ under OMP_THREAD_LIMIT or when the
    // request exceeds the machine.
    const int threads_used = effective_num_threads();
    try {
      output = job->work(counters);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    const double run_seconds = run_timer.seconds();
    obs::registry().histogram("gct_job_queue_wait_seconds")
        .observe(job->record.wait_seconds);
    obs::registry().histogram("gct_job_run_seconds").observe(run_seconds);
    obs::registry()
        .counter(failed ? "gct_job_runs_total{state=\"failed\"}"
                        : "gct_job_runs_total{state=\"done\"}")
        .add();
    // Always restore this worker's default — the work itself may have
    // called set_num_threads (the script's `threads N`), and a worker must
    // not carry one session's pinning into another session's job.
    set_num_threads(0);

    lock.lock();
    job->record.state = failed ? JobState::kFailed : JobState::kDone;
    job->record.output = std::move(output);
    job->record.error = std::move(error);
    job->record.run_seconds = run_seconds;
    job->record.threads = threads_used;
    job->record.counters = counters;
    if (!job->record.graph_key.empty()) {
      busy_graphs_.erase(job->record.graph_key);
    }
    terminal_cv_.notify_all();
    // The freed graph may unblock a queued job another worker skipped.
    work_cv_.notify_all();
  }
}

JobRecord JobQueue::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    JobRecord missing;
    missing.id = id;
    missing.state = JobState::kFailed;
    missing.error = "unknown job id";
    return missing;
  }
  std::shared_ptr<Internal> job = it->second;
  terminal_cv_.wait(lock, [&] { return job->record.terminal(); });
  return job->record;
}

bool JobQueue::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->record.state != JobState::kQueued) {
    return false;
  }
  auto pending_it = std::find(pending_.begin(), pending_.end(), id);
  if (pending_it == pending_.end()) return false;
  pending_.erase(pending_it);
  it->second->record.state = JobState::kCancelled;
  it->second->record.wait_seconds = it->second->queued_at.seconds();
  obs::registry().counter("gct_job_runs_total{state=\"cancelled\"}").add();
  terminal_cv_.notify_all();
  return true;
}

std::optional<JobRecord> JobQueue::get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->record;
}

std::vector<JobRecord> JobQueue::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job->record);
  return out;
}

void JobQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
    for (std::uint64_t id : pending_) {
      auto& job = jobs_.at(id);
      job->record.state = JobState::kCancelled;
      job->record.error = "server shutting down";
    }
    pending_.clear();
    terminal_cv_.notify_all();
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace graphct::server
