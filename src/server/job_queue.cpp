#include "server/job_queue.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/result_cache.hpp"
#include "util/timer.hpp"

namespace graphct::server {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kShedQueueFull:
      return "queue full";
    case Admission::kShedSessionFull:
      return "session backlog full";
    case Admission::kShedShutdown:
      return "server shutting down";
  }
  return "unknown";
}

struct JobQueue::Internal {
  JobRecord record;
  Work work;
  OnTerminal on_terminal;
  int threads = 0;
  Timer queued_at;  // measures queue wait
};

namespace {

void note_queue_depth(std::size_t pending) {
  static obs::Gauge& g = obs::registry().gauge("gct_job_queue_depth");
  g.set(static_cast<double>(pending));
}

}  // namespace

JobQueue::JobQueue(int num_workers, QueueLimits limits) : limits_(limits) {
  const int n = std::max(1, num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobQueue::~JobQueue() { shutdown(); }

std::uint64_t JobQueue::enqueue(std::string session, std::string graph_key,
                                std::string command, Work work, int threads,
                                OnTerminal on_terminal) {
  auto job = std::make_shared<Internal>();
  job->work = std::move(work);
  job->on_terminal = std::move(on_terminal);
  job->threads = threads;
  job->record.session = std::move(session);
  job->record.graph_key = std::move(graph_key);
  job->record.command = std::move(command);
  std::uint64_t id;
  OnTerminal fire;  // shutdown path: cancelled immediately
  JobRecord fired_record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    job->record.id = id;
    if (shutdown_) {
      job->record.state = JobState::kCancelled;
      job->record.error = "server shutting down";
      fired_record = job->record;
      fire = std::move(job->on_terminal);
      jobs_.emplace(id, std::move(job));
    } else {
      const std::string& s = job->record.session;
      auto [it, fresh] = pending_by_session_.try_emplace(s);
      if (fresh) rotation_.push_back(s);
      it->second.push_back(id);
      ++pending_total_;
      note_queue_depth(pending_total_);
      jobs_.emplace(id, job);
    }
  }
  if (fire) fire(fired_record);
  work_cv_.notify_one();
  return id;
}

std::uint64_t JobQueue::submit(std::string session, std::string graph_key,
                               std::string command, Work work, int threads) {
  return enqueue(std::move(session), std::move(graph_key), std::move(command),
                 std::move(work), threads, {});
}

JobQueue::SubmitResult JobQueue::try_submit(std::string session,
                                            std::string graph_key,
                                            std::string command, Work work,
                                            int threads,
                                            OnTerminal on_terminal) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return {Admission::kShedShutdown, 0};
    if (limits_.max_queued > 0 &&
        pending_total_ >= static_cast<std::size_t>(limits_.max_queued)) {
      obs::registry()
          .counter("gct_jobs_shed_total{reason=\"queue_full\"}")
          .add();
      return {Admission::kShedQueueFull, 0};
    }
    if (limits_.max_queued_per_session > 0) {
      auto it = pending_by_session_.find(session);
      if (it != pending_by_session_.end() &&
          it->second.size() >=
              static_cast<std::size_t>(limits_.max_queued_per_session)) {
        obs::registry()
            .counter("gct_jobs_shed_total{reason=\"session_full\"}")
            .add();
        return {Admission::kShedSessionFull, 0};
      }
    }
  }
  // Admission raced with other submitters between the check and the
  // enqueue; the bound is approximate by one or two jobs under heavy
  // contention, which is fine for shedding purposes.
  const std::uint64_t id =
      enqueue(std::move(session), std::move(graph_key), std::move(command),
              std::move(work), threads, std::move(on_terminal));
  return {Admission::kAdmitted, id};
}

std::uint64_t JobQueue::take_runnable_locked() {
  for (std::size_t scanned = 0; scanned < rotation_.size(); ++scanned) {
    const std::string session = rotation_.front();
    rotation_.pop_front();
    auto it = pending_by_session_.find(session);
    if (it == pending_by_session_.end() || it->second.empty()) {
      continue;  // emptied by cancel; drop from rotation
    }
    auto& dq = it->second;
    bool taken = false;
    std::uint64_t id = 0;
    // First job in this session whose graph is idle. Scanning past a
    // blocked head is safe: a later job on the *same* graph is equally
    // blocked, so per-graph FIFO within the session is preserved.
    for (auto jit = dq.begin(); jit != dq.end(); ++jit) {
      const auto& job = jobs_.at(*jit);
      if (job->record.graph_key.empty() ||
          busy_graphs_.count(job->record.graph_key) == 0) {
        id = *jit;
        dq.erase(jit);
        taken = true;
        break;
      }
    }
    if (!taken) {
      rotation_.push_back(session);  // nothing runnable; keep in rotation
      continue;
    }
    --pending_total_;
    note_queue_depth(pending_total_);
    if (dq.empty()) {
      pending_by_session_.erase(it);
    } else {
      rotation_.push_back(session);  // scheduled: go to the back (fairness)
    }
    return id;
  }
  return 0;
}

void JobQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const std::uint64_t id = take_runnable_locked();
    if (id == 0) {
      if (shutdown_) return;
      work_cv_.wait(lock);
      continue;
    }
    std::shared_ptr<Internal> job = jobs_.at(id);
    job->record.state = JobState::kRunning;
    job->record.wait_seconds = job->queued_at.seconds();
    ++running_;
    if (!job->record.graph_key.empty()) {
      busy_graphs_.insert(job->record.graph_key);
    }
    lock.unlock();

    // Pin this worker's OpenMP parallelism for the job, then restore the
    // default — omp_set_num_threads is per calling thread, so concurrent
    // jobs on other workers are unaffected.
    if (job->threads > 0) set_num_threads(job->threads);
    std::string output;
    std::string error;
    bool failed = false;
    JobCounters counters;
    Timer run_timer;
    // Record what the OpenMP runtime will actually deliver, not what the
    // session requested — the two differ under OMP_THREAD_LIMIT or when the
    // request exceeds the machine.
    const int threads_used = effective_num_threads();
    try {
      output = job->work(counters);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    const double run_seconds = run_timer.seconds();
    obs::registry().histogram("gct_job_queue_wait_seconds")
        .observe(job->record.wait_seconds);
    obs::registry().histogram("gct_job_run_seconds").observe(run_seconds);
    obs::registry()
        .counter(failed ? "gct_job_runs_total{state=\"failed\"}"
                        : "gct_job_runs_total{state=\"done\"}")
        .add();
    // Always restore this worker's default — the work itself may have
    // called set_num_threads (the script's `threads N`), and a worker must
    // not carry one session's pinning into another session's job.
    set_num_threads(0);
    // Drop values a bounded ResultCache pinned for this job's references;
    // the job is done with them, and a worker must not accumulate pins
    // across jobs.
    ResultCache::release_thread_pins();

    lock.lock();
    job->record.state = failed ? JobState::kFailed : JobState::kDone;
    job->record.output = std::move(output);
    job->record.error = std::move(error);
    job->record.run_seconds = run_seconds;
    job->record.threads = threads_used;
    job->record.counters = counters;
    --running_;
    if (!job->record.graph_key.empty()) {
      busy_graphs_.erase(job->record.graph_key);
    }
    terminal_cv_.notify_all();
    // The freed graph may unblock a queued job another worker skipped.
    work_cv_.notify_all();
    if (job->on_terminal) {
      OnTerminal fire = std::move(job->on_terminal);
      const JobRecord record = job->record;
      lock.unlock();
      fire(record);
      lock.lock();
    }
  }
}

JobRecord JobQueue::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    JobRecord missing;
    missing.id = id;
    missing.state = JobState::kFailed;
    missing.error = "unknown job id";
    return missing;
  }
  std::shared_ptr<Internal> job = it->second;
  terminal_cv_.wait(lock, [&] { return job->record.terminal(); });
  return job->record;
}

void JobQueue::unqueue_locked(const std::shared_ptr<Internal>& job) {
  auto it = pending_by_session_.find(job->record.session);
  if (it == pending_by_session_.end()) return;
  auto& dq = it->second;
  auto pos = std::find(dq.begin(), dq.end(), job->record.id);
  if (pos == dq.end()) return;
  dq.erase(pos);
  --pending_total_;
  note_queue_depth(pending_total_);
  if (dq.empty()) {
    pending_by_session_.erase(it);
    // Keep the invariant "in rotation_ iff it has pending jobs" so a
    // cancel/resubmit cycle cannot give one session duplicate turns.
    auto rot = std::find(rotation_.begin(), rotation_.end(),
                         job->record.session);
    if (rot != rotation_.end()) rotation_.erase(rot);
  }
}

bool JobQueue::cancel(std::uint64_t id) {
  OnTerminal fire;
  JobRecord record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->record.state != JobState::kQueued) {
      return false;
    }
    auto& job = it->second;
    unqueue_locked(job);
    job->record.state = JobState::kCancelled;
    job->record.wait_seconds = job->queued_at.seconds();
    obs::registry().counter("gct_job_runs_total{state=\"cancelled\"}").add();
    fire = std::move(job->on_terminal);
    record = job->record;
    terminal_cv_.notify_all();
  }
  if (fire) fire(record);
  return true;
}

int JobQueue::cancel_pending() {
  std::vector<std::pair<OnTerminal, JobRecord>> fired;
  int cancelled = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [session, dq] : pending_by_session_) {
      for (const std::uint64_t id : dq) {
        auto& job = jobs_.at(id);
        job->record.state = JobState::kCancelled;
        job->record.error = "server stopping";
        job->record.wait_seconds = job->queued_at.seconds();
        obs::registry()
            .counter("gct_job_runs_total{state=\"cancelled\"}")
            .add();
        if (job->on_terminal) {
          fired.emplace_back(std::move(job->on_terminal), job->record);
        }
        ++cancelled;
      }
    }
    pending_by_session_.clear();
    rotation_.clear();
    pending_total_ = 0;
    note_queue_depth(0);
    terminal_cv_.notify_all();
  }
  for (auto& [fire, record] : fired) fire(record);
  return cancelled;
}

bool JobQueue::drain(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  return terminal_cv_.wait_until(lock, deadline, [&] {
    return pending_total_ == 0 && running_ == 0;
  });
}

std::optional<JobRecord> JobQueue::get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->record;
}

std::vector<JobRecord> JobQueue::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job->record);
  return out;
}

int JobQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(pending_total_);
}

void JobQueue::shutdown() {
  std::vector<std::pair<OnTerminal, JobRecord>> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
    for (auto& [session, dq] : pending_by_session_) {
      for (const std::uint64_t id : dq) {
        auto& job = jobs_.at(id);
        job->record.state = JobState::kCancelled;
        job->record.error = "server shutting down";
        if (job->on_terminal) {
          fired.emplace_back(std::move(job->on_terminal), job->record);
        }
      }
    }
    pending_by_session_.clear();
    rotation_.clear();
    pending_total_ = 0;
    note_queue_depth(0);
    terminal_cv_.notify_all();
  }
  for (auto& [fire, record] : fired) fire(record);
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace graphct::server
