#pragma once

/// \file session.hpp
/// One analyst session: interpreter state plus protocol handling.
///
/// A session owns a script interpreter (graph stack, thread pinning) and
/// turns protocol lines into jobs. The wire protocol is the scripting
/// language itself (paper §IV-B) — one command per line — plus a few
/// server verbs answered inline without queueing:
///
///   graphs           list registry-resident graphs
///   jobs             list the job table (state, timings, cache traffic)
///   session          this session's name, stack depth, pinned threads
///   cancel <id>      cancel a still-queued job
///   proto [v1|compat]  report or switch the response framing
///
/// Any command may carry a client request id: `@<id> <command>`. The id is
/// echoed on the response (`id=<id>`), which is what lets a pipelining
/// client match interleaved responses to requests.
///
/// ## Response framing
///
/// Two framings are supported per session. **Compat** (the default, the
/// original protocol): zero or more output lines followed by exactly one
/// terminator line —
///
///   ok [id=<rid>] [job=<id> graph=<key> wall=<t> queue=<t> threads=<n>
///       cache=<h>/<m>]
///   error [id=<rid>] <message>
///
/// so clients frame responses by reading until a line starting "ok" or
/// "error". Requests shed by admission control render as
/// `error [id=<rid>] busy: <reason>` to stay parseable by old clients.
///
/// **Framed v1** (`proto v1`): every response starts with one stable
/// header line —
///
///   gct/1 <ok|error|busy> lines=<n> [id=<rid>] [job=... graph=...
///       wall=... queue=... threads=... cache=<h>/<m>]
///
/// followed by exactly `n` payload lines. Errors carry the message as the
/// last payload line; `busy` responses carry the shed reason as their only
/// payload line. Fixed-position tokens (magic, status, lines=) mean a
/// client can frame without scanning payload content, which is what makes
/// pipelining safe. The response to `proto ...` itself is rendered in the
/// framing that was active when the command was received.
///
/// handle_line() is synchronous (submit, wait, respond); dispatch() is the
/// asynchronous form the event-driven TCP transport uses — the completion
/// callback fires from a worker thread when the job finishes (or inline
/// for server verbs and shed requests). Either way a session must be
/// driven one command at a time; concurrency comes from many sessions
/// sharing the queue and registry.

#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "script/interpreter.hpp"
#include "server/graph_registry.hpp"
#include "server/job_queue.hpp"
#include "util/framing.hpp"

namespace graphct::server {

/// One connected analyst.
class Session {
 public:
  /// Response framing spoken by this session (see file comment).
  enum class Protocol { kCompat, kFramedV1 };

  /// Receives one complete response (all lines '\n'-terminated). May be
  /// invoked inline from dispatch() (server verbs, shed/busy) or later
  /// from a job-queue worker thread (queued commands).
  using Done = std::function<void(std::string)>;

  Session(std::string name, GraphRegistry& registry, JobQueue& queue,
          script::InterpreterOptions opts);

  /// Execute one protocol line and return the full response text. Never
  /// throws: command failures become "error ..." responses. Synchronous
  /// wrapper over dispatch() for the stdio transport, tests, and
  /// embedders.
  std::string handle_line(const std::string& line);

  /// Asynchronous form: parse the line, answer server verbs inline, and
  /// submit script commands to the job queue with `done` as completion.
  /// `done` is invoked exactly once — including when the job is cancelled
  /// by shutdown or shed by admission control — so the event loop never
  /// waits on a response that cannot arrive. At most one dispatch may be
  /// outstanding per session.
  void dispatch(const std::string& line, Done done);

  /// Render a `busy` response for `line` — request id echoed, active
  /// framing — without dispatching it. The TCP transport uses this to shed
  /// pipelined input that overflows the per-connection backlog before it
  /// ever reaches the job queue.
  [[nodiscard]] std::string shed_reply(const std::string& line,
                                       const std::string& reason) const;

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] Protocol protocol() const { return protocol_; }
  void set_protocol(Protocol p) { protocol_ = p; }

  /// The underlying interpreter, for in-process embedders and tests.
  [[nodiscard]] script::Interpreter& interpreter() { return interp_; }

 private:
  /// One response, rendered by format_reply() per the active protocol.
  /// Both framings live in util/framing (shared with the dist wire layer's
  /// tests and any future client); the session only chooses which to use.
  using Reply = framing::TextReply;

  [[nodiscard]] std::string format_reply(const Reply& reply,
                                         const std::string& request_id,
                                         Protocol protocol) const;
  void run_command(const std::string& line, const std::string& request_id,
                   Protocol protocol, const Done& done);
  std::string handle_proto(const std::string& args,
                           const std::string& request_id);
  std::string list_graphs() const;
  std::string list_jobs() const;

  std::string name_;
  GraphRegistry& registry_;
  JobQueue& queue_;
  Protocol protocol_ = Protocol::kCompat;
  std::ostringstream out_;
  script::Interpreter interp_;
};

}  // namespace graphct::server
