#pragma once

/// \file session.hpp
/// One analyst session: interpreter state plus protocol handling.
///
/// A session owns a script interpreter (graph stack, thread pinning) and
/// turns protocol lines into jobs. The wire protocol is the scripting
/// language itself (paper §IV-B) — one command per line — plus a few
/// server verbs answered inline without queueing:
///
///   graphs           list registry-resident graphs
///   jobs             list the job table (state, timings, cache traffic)
///   session          this session's name, stack depth, pinned threads
///   cancel <id>      cancel a still-queued job
///
/// Every response is zero or more output lines followed by exactly one
/// terminator line:
///
///   ok [job=<id> graph=<key> wall=<t> queue=<t> threads=<n> cache=<h>/<m>]
///   error <message>
///
/// so clients frame responses by reading until a line starting "ok" or
/// "error". The cache=<hits>/<misses> field is the kernel-cache delta the
/// command caused — a repeated query shows hits and zero misses.
///
/// handle_line() is synchronous (submit, wait, respond) and a session must
/// be driven from one thread at a time; concurrency comes from many
/// sessions sharing the queue and registry.

#include <memory>
#include <sstream>
#include <string>

#include "script/interpreter.hpp"
#include "server/graph_registry.hpp"
#include "server/job_queue.hpp"

namespace graphct::server {

/// One connected analyst.
class Session {
 public:
  Session(std::string name, GraphRegistry& registry, JobQueue& queue,
          script::InterpreterOptions opts);

  /// Execute one protocol line and return the full response text (output
  /// lines + terminator line, each '\n'-terminated). Never throws: command
  /// failures become "error ..." responses.
  std::string handle_line(const std::string& line);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// The underlying interpreter, for in-process embedders and tests.
  [[nodiscard]] script::Interpreter& interpreter() { return interp_; }

 private:
  std::string run_command(const std::string& line);
  std::string list_graphs() const;
  std::string list_jobs() const;

  std::string name_;
  GraphRegistry& registry_;
  JobQueue& queue_;
  std::ostringstream out_;
  script::Interpreter interp_;
};

}  // namespace graphct::server
