#pragma once

/// \file server.hpp
/// graphctd — the long-running analysis server.
///
/// Owns the shared pieces (graph registry, job queue) and manufactures
/// sessions over three transports:
///
///   * in-process:  open_session() — tests and embedding applications
///     drive sessions directly, no I/O;
///   * stdio:       serve_stream(in, out) — one session over a pair of
///     streams (`graphct serve --stdio`), trivially scriptable;
///   * TCP:         serve_tcp(port) — a localhost line-oriented socket
///     (`graphct serve <port>`), served by a single epoll event loop.
///
/// All transports speak the same protocol (see session.hpp): script
/// commands in, framed responses out. The registry and job queue are
/// shared across every session, so graphs load once, repeated queries hit
/// the shared kernel cache, and jobs on different graphs run concurrently
/// while jobs on one graph are serialized.
///
/// ## Serving model
///
/// The TCP transport is event-driven: one thread runs an epoll loop over
/// non-blocking sockets, parsing lines into per-connection buffers and
/// handing complete commands to Session::dispatch(). Heavy work never runs
/// on the loop thread — commands become jobs on the worker pool, and each
/// completion is posted back to the loop (eventfd wakeup) for writing.
/// One connection therefore costs a few KiB of buffers, not a thread, and
/// hundreds of concurrent analyst sessions are cheap.
///
/// Overload is explicit rather than silent: every capacity knob lives in
/// ServerLimits, and each bound sheds with a visible response ("busy" /
/// refusal line) instead of queueing without bound.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "script/interpreter.hpp"
#include "server/graph_registry.hpp"
#include "server/job_queue.hpp"
#include "server/session.hpp"

namespace graphct::server {

/// Every capacity and overload-behavior knob in one place. All bounds use
/// 0 = unlimited/disabled so an embedder constructing `ServerLimits{}`
/// changes nothing; `graphct serve` maps each field to a CLI flag.
struct ServerLimits {
  /// Concurrent TCP connections. Connection number max_connections+1 is
  /// told "error server at connection capacity" and closed immediately.
  int max_connections = 1024;

  /// Global bound on queued (not yet running) jobs; excess submissions
  /// shed with `busy` (Admission::kShedQueueFull).
  int max_queued_jobs = 1024;

  /// Per-session bound, applied twice: jobs queued in the JobQueue, and
  /// pipelined lines buffered per connection awaiting dispatch. Keeps one
  /// bursty analyst from monopolizing the backlog.
  int max_queued_per_session = 16;

  /// Byte budget shared by every per-graph kernel-result cache (LRU
  /// eviction; see ResultCache). 0 = unbounded, the historical behavior.
  std::uint64_t cache_budget_bytes = 0;

  /// Close a connection that has sent a partial line (bytes but no '\n')
  /// and then stalled for this long. 0 disables.
  double read_timeout_seconds = 0.0;

  /// Close a connection with no traffic in either direction for this
  /// long. 0 disables (analyst sessions are often long-lived and idle).
  double idle_timeout_seconds = 0.0;

  /// On stop: how long serve_tcp() keeps delivering responses for jobs
  /// that were already running before closing connections.
  double drain_timeout_seconds = 5.0;
};

/// Server configuration.
struct ServerOptions {
  /// Worker threads executing jobs (also the bound on concurrently running
  /// graphs).
  int workers = 4;

  /// Capacity bounds and overload behavior (see ServerLimits).
  ServerLimits limits;

  /// Options every session's interpreter starts from (toolkit defaults,
  /// timings flag). The provider field is overwritten per session.
  /// `limits.cache_budget_bytes`, when set, overrides the toolkit's
  /// cache_budget_bytes so one flag governs every graph's cache.
  script::InterpreterOptions interpreter;
};

/// The graphctd daemon, embeddable in-process.
class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] GraphRegistry& registry() { return registry_; }
  [[nodiscard]] JobQueue& jobs() { return queue_; }
  [[nodiscard]] const ServerLimits& limits() const { return opts_.limits; }

  /// Open an in-process session. `name` defaults to "s<counter>". The
  /// session holds references into this server; drop it before the server.
  std::shared_ptr<Session> open_session(std::string name = "");

  /// Run one session over a stream pair until EOF or `quit`. This is the
  /// `graphct serve --stdio` entry point and what tests drive.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Listen on 127.0.0.1:`port` (0 = ephemeral, see port()) and serve
  /// every connection from one epoll event loop on the calling thread
  /// until request_stop(). Returns 0 on clean shutdown. Throws
  /// graphct::Error when the socket cannot be bound. `on_listening`, when
  /// set, runs once the socket is accepting (the CLI's startup banner).
  int serve_tcp(int port, const std::function<void()>& on_listening = {});

  /// Port serve_tcp() is bound to (useful with port 0); 0 before the
  /// socket is listening.
  [[nodiscard]] int port() const { return bound_port_.load(); }

  /// Ask serve_tcp() to stop (callable from any thread or a
  /// signal-adjacent context). The loop cancels still-queued jobs, keeps
  /// delivering responses for running jobs for up to
  /// limits.drain_timeout_seconds, then closes every connection.
  void request_stop();

 private:
  /// A response finished off the loop thread, posted back for writing.
  struct Completion {
    std::uint64_t conn_gen = 0;
    std::string text;
  };

  void post_completion(std::uint64_t conn_gen, std::string text);

  ServerOptions opts_;
  GraphRegistry registry_;
  JobQueue queue_;
  std::atomic<int> next_session_{1};
  std::atomic<int> bound_port_{0};
  std::atomic<int> wake_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::mutex comp_mu_;
  std::vector<Completion> completions_;
};

}  // namespace graphct::server
