#pragma once

/// \file server.hpp
/// graphctd — the long-running analysis server.
///
/// Owns the shared pieces (graph registry, job queue) and manufactures
/// sessions over three transports:
///
///   * in-process:  open_session() — tests and embedding applications
///     drive sessions directly, no I/O;
///   * stdio:       serve_stream(in, out) — one session over a pair of
///     streams (`graphct serve --stdio`), trivially scriptable;
///   * TCP:         serve_tcp(port) — a localhost line-oriented socket
///     (`graphct serve <port>`), one thread + session per connection.
///
/// All transports speak the same protocol (see session.hpp): script
/// commands in, output + "ok"/"error" terminator out. The registry and job
/// queue are shared across every session, so graphs load once, repeated
/// queries hit the shared kernel cache, and jobs on different graphs run
/// concurrently while jobs on one graph are serialized.

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "script/interpreter.hpp"
#include "server/graph_registry.hpp"
#include "server/job_queue.hpp"
#include "server/session.hpp"

namespace graphct::server {

/// Server configuration.
struct ServerOptions {
  /// Worker threads executing jobs (also the bound on concurrently running
  /// graphs).
  int workers = 4;

  /// Options every session's interpreter starts from (toolkit defaults,
  /// timings flag). The provider field is overwritten per session.
  script::InterpreterOptions interpreter;
};

/// The graphctd daemon, embeddable in-process.
class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] GraphRegistry& registry() { return registry_; }
  [[nodiscard]] JobQueue& jobs() { return queue_; }

  /// Open an in-process session. `name` defaults to "s<counter>". The
  /// session holds references into this server; drop it before the server.
  std::shared_ptr<Session> open_session(std::string name = "");

  /// Run one session over a stream pair until EOF or `quit`. This is the
  /// `graphct serve --stdio` entry point and what tests drive.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Listen on 127.0.0.1:`port` and serve each connection on its own
  /// thread until request_stop(). Returns 0 on clean shutdown. Throws
  /// graphct::Error when the socket cannot be bound. `on_listening`, when
  /// set, runs once the socket is accepting (the CLI's startup banner).
  int serve_tcp(int port, const std::function<void()>& on_listening = {});

  /// Unblock serve_tcp()'s accept loop (callable from any thread or a
  /// signal-adjacent context).
  void request_stop();

 private:
  ServerOptions opts_;
  GraphRegistry registry_;
  JobQueue queue_;
  std::atomic<int> next_session_{1};
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> connections_;
};

}  // namespace graphct::server
