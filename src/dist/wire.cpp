#include "dist/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/framing.hpp"

namespace graphct::dist {

const char* msg_name(Msg m) {
  switch (m) {
    case Msg::kHello: return "hello";
    case Msg::kHelloAck: return "hello-ack";
    case Msg::kLoadBlock: return "load-block";
    case Msg::kLoadAck: return "load-ack";
    case Msg::kBfsStart: return "bfs-start";
    case Msg::kBfsStep: return "bfs-step";
    case Msg::kBfsFrontier: return "bfs-frontier";
    case Msg::kCcStart: return "cc-start";
    case Msg::kCcStep: return "cc-step";
    case Msg::kCcDelta: return "cc-delta";
    case Msg::kPrStart: return "pr-start";
    case Msg::kPrStep: return "pr-step";
    case Msg::kPrRanks: return "pr-ranks";
    case Msg::kAck: return "ack";
    case Msg::kError: return "error";
    case Msg::kShutdown: return "shutdown";
    case Msg::kBcStart: return "bc-start";
    case Msg::kBcSource: return "bc-source";
    case Msg::kBcForward: return "bc-forward";
    case Msg::kBcCandidates: return "bc-candidates";
    case Msg::kBcSigma: return "bc-sigma";
    case Msg::kBcSigmaBlock: return "bc-sigma-block";
    case Msg::kBcBackward: return "bc-backward";
    case Msg::kBcCoefBlock: return "bc-coef-block";
    case Msg::kBcScores: return "bc-scores";
    case Msg::kBcScoreBlock: return "bc-score-block";
  }
  return "unknown";
}

void WireWriter::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  buf_.append(b, 8);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}

void WireWriter::i64_span(std::span<const std::int64_t> v) {
  u64(v.size());
  // Little-endian hosts (everything we target) append the array in one
  // memcpy; the per-element path stays as the portable fallback.
  const std::size_t bytes = v.size() * sizeof(std::int64_t);
  if constexpr (std::endian::native == std::endian::little) {
    buf_.append(reinterpret_cast<const char*>(v.data()), bytes);
  } else {
    for (const std::int64_t x : v) i64(x);
  }
}

void WireWriter::f64_span(std::span<const double> v) {
  u64(v.size());
  if constexpr (std::endian::native == std::endian::little) {
    buf_.append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(double));
  } else {
    for (const double x : v) f64(x);
  }
}

void WireWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

void WireReader::need(std::size_t bytes) const {
  if (static_cast<std::size_t>(end_ - p_) < bytes) {
    throw Error("dist wire: truncated payload (need " +
                std::to_string(bytes) + " bytes, have " +
                std::to_string(end_ - p_) + ")");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(*p_++);
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i]))
         << (8 * i);
  }
  p_ += 8;
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void WireReader::i64_vec(std::vector<std::int64_t>& out) {
  const std::uint64_t n = u64();
  // Guard the multiply below against wrap-around from a corrupt length.
  need(n > static_cast<std::uint64_t>(end_ - p_) ? static_cast<std::size_t>(-1)
                                                 : n * sizeof(std::int64_t));
  out.resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), p_, n * sizeof(std::int64_t));
    p_ += n * sizeof(std::int64_t);
  } else {
    for (std::uint64_t i = 0; i < n; ++i) out[i] = i64();
  }
}

void WireReader::f64_vec(std::vector<double>& out) {
  const std::uint64_t n = u64();
  need(n > static_cast<std::uint64_t>(end_ - p_) ? static_cast<std::size_t>(-1)
                                                 : n * sizeof(double));
  out.resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), p_, n * sizeof(double));
    p_ += n * sizeof(double);
  } else {
    for (std::uint64_t i = 0; i < n; ++i) out[i] = f64();
  }
}

std::string WireReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(p_, n);
  p_ += n;
  return s;
}

namespace {

/// Cached obs counters — FrameConn send/recv is the substrate's hot path.
struct DistCounters {
  obs::Counter& msgs_tx;
  obs::Counter& msgs_rx;
  obs::Counter& bytes_tx;
  obs::Counter& bytes_rx;
};

DistCounters& dist_counters() {
  static DistCounters c{
      obs::registry().counter("gct_dist_messages_total{dir=\"tx\"}"),
      obs::registry().counter("gct_dist_messages_total{dir=\"rx\"}"),
      obs::registry().counter("gct_dist_bytes_total{dir=\"tx\"}"),
      obs::registry().counter("gct_dist_bytes_total{dir=\"rx\"}"),
  };
  return c;
}

void write_all(int fd, const char* data, std::size_t bytes) {
  std::size_t sent = 0;
  while (sent < bytes) {
    const ssize_t n = ::send(fd, data + sent, bytes - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("dist wire: send failed: ") +
                  std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Read exactly `bytes`. Returns false on EOF before the first byte;
/// throws on EOF mid-buffer or on error.
bool read_all(int fd, char* data, std::size_t bytes) {
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::recv(fd, data + got, bytes - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("dist wire: recv failed: ") +
                  std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw Error("dist wire: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FrameConn::FrameConn(FrameConn&& o) noexcept
    : fd_(o.fd_),
      traffic_(o.traffic_),
      outbox_(std::move(o.outbox_)),
      out_pos_(o.out_pos_),
      in_h_(o.in_h_),
      in_got_(o.in_got_),
      in_have_header_(o.in_have_header_),
      in_payload_(std::move(o.in_payload_)) {
  std::memcpy(in_header_, o.in_header_, sizeof(in_header_));
  o.fd_ = -1;
}

FrameConn& FrameConn::operator=(FrameConn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    traffic_ = o.traffic_;
    outbox_ = std::move(o.outbox_);
    out_pos_ = o.out_pos_;
    in_h_ = o.in_h_;
    in_got_ = o.in_got_;
    in_have_header_ = o.in_have_header_;
    in_payload_ = std::move(o.in_payload_);
    std::memcpy(in_header_, o.in_header_, sizeof(in_header_));
    o.fd_ = -1;
  }
  return *this;
}

void FrameConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  outbox_.clear();
  out_pos_ = 0;
  in_have_header_ = false;
  in_got_ = 0;
  in_payload_.clear();
}

void FrameConn::send(Msg type, std::string_view payload) {
  GCT_CHECK(valid(), "dist wire: send on closed connection");
  const std::string frame =
      framing::encode_frame(static_cast<std::uint8_t>(type), payload);
  write_all(fd_, frame.data(), frame.size());
  traffic_.messages_sent += 1;
  traffic_.bytes_sent += static_cast<std::int64_t>(frame.size());
  auto& c = dist_counters();
  c.msgs_tx.add(1);
  c.bytes_tx.add(static_cast<std::int64_t>(frame.size()));
}

bool FrameConn::recv(Msg& type, std::string& payload) {
  GCT_CHECK(valid(), "dist wire: recv on closed connection");
  unsigned char header[framing::kFrameHeaderBytes];
  if (!read_all(fd_, reinterpret_cast<char*>(header), sizeof(header))) {
    return false;
  }
  framing::FrameHeader h;
  switch (framing::decode_frame_header(header, h)) {
    case framing::HeaderStatus::kOk:
      break;
    case framing::HeaderStatus::kBadMagic:
      throw Error("dist wire: bad frame magic (stream corrupt or peer is "
                  "not a graphct worker)");
    case framing::HeaderStatus::kBadVersion:
      throw Error("dist wire: unsupported frame version " +
                  std::to_string(h.version));
    case framing::HeaderStatus::kOversized:
      throw Error("dist wire: frame payload length exceeds limit");
  }
  payload.resize(h.payload_len);
  if (h.payload_len > 0 && !read_all(fd_, payload.data(), h.payload_len)) {
    throw Error("dist wire: connection closed mid-frame");
  }
  if (!framing::payload_matches(h, payload)) {
    throw Error("dist wire: frame checksum mismatch");
  }
  type = static_cast<Msg>(h.type);
  const std::int64_t total =
      static_cast<std::int64_t>(framing::kFrameHeaderBytes + h.payload_len);
  traffic_.messages_received += 1;
  traffic_.bytes_received += total;
  auto& c = dist_counters();
  c.msgs_rx.add(1);
  c.bytes_rx.add(total);
  return true;
}

void FrameConn::queue_send(Msg type, std::string_view payload) {
  GCT_CHECK(valid(), "dist wire: send on closed connection");
  const std::string frame =
      framing::encode_frame(static_cast<std::uint8_t>(type), payload);
  // Compact drained bytes before appending so back-to-back rounds reuse
  // the buffer instead of growing it without bound.
  if (out_pos_ == outbox_.size()) {
    outbox_.clear();
    out_pos_ = 0;
  }
  outbox_.append(frame);
  traffic_.messages_sent += 1;
  traffic_.bytes_sent += static_cast<std::int64_t>(frame.size());
  auto& c = dist_counters();
  c.msgs_tx.add(1);
  c.bytes_tx.add(static_cast<std::int64_t>(frame.size()));
}

bool FrameConn::flush_some() {
  GCT_CHECK(valid(), "dist wire: send on closed connection");
  while (out_pos_ < outbox_.size()) {
    const ssize_t n = ::send(fd_, outbox_.data() + out_pos_,
                             outbox_.size() - out_pos_,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      throw Error(std::string("dist wire: send failed: ") +
                  std::strerror(errno));
    }
    out_pos_ += static_cast<std::size_t>(n);
  }
  outbox_.clear();
  out_pos_ = 0;
  return true;
}

bool FrameConn::recv_some(Msg& type, std::string& payload) {
  GCT_CHECK(valid(), "dist wire: recv on closed connection");
  if (!in_have_header_) {
    while (in_got_ < framing::kFrameHeaderBytes) {
      const ssize_t n =
          ::recv(fd_, reinterpret_cast<char*>(in_header_) + in_got_,
                 framing::kFrameHeaderBytes - in_got_, MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
        throw Error(std::string("dist wire: recv failed: ") +
                    std::strerror(errno));
      }
      if (n == 0) {
        // A reply is owed mid-exchange, so EOF here is never clean.
        throw Error("dist wire: connection closed (worker died)");
      }
      in_got_ += static_cast<std::size_t>(n);
    }
    switch (framing::decode_frame_header(in_header_, in_h_)) {
      case framing::HeaderStatus::kOk:
        break;
      case framing::HeaderStatus::kBadMagic:
        throw Error("dist wire: bad frame magic (stream corrupt or peer is "
                    "not a graphct worker)");
      case framing::HeaderStatus::kBadVersion:
        throw Error("dist wire: unsupported frame version " +
                    std::to_string(in_h_.version));
      case framing::HeaderStatus::kOversized:
        throw Error("dist wire: frame payload length exceeds limit");
    }
    in_have_header_ = true;
    in_payload_.resize(in_h_.payload_len);
    in_got_ = 0;
  }
  while (in_got_ < in_h_.payload_len) {
    const ssize_t n = ::recv(fd_, in_payload_.data() + in_got_,
                             in_h_.payload_len - in_got_, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      throw Error(std::string("dist wire: recv failed: ") +
                  std::strerror(errno));
    }
    if (n == 0) throw Error("dist wire: connection closed mid-frame");
    in_got_ += static_cast<std::size_t>(n);
  }
  if (!framing::payload_matches(in_h_, in_payload_)) {
    throw Error("dist wire: frame checksum mismatch");
  }
  type = static_cast<Msg>(in_h_.type);
  payload = std::move(in_payload_);
  in_payload_.clear();
  in_have_header_ = false;
  in_got_ = 0;
  const std::int64_t total = static_cast<std::int64_t>(
      framing::kFrameHeaderBytes + payload.size());
  traffic_.messages_received += 1;
  traffic_.bytes_received += total;
  auto& c = dist_counters();
  c.msgs_rx.add(1);
  c.bytes_rx.add(total);
  return true;
}

FrameConn connect_local(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GCT_CHECK(fd >= 0, "dist wire: cannot create socket");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw Error("dist wire: cannot connect to worker on 127.0.0.1:" +
                std::to_string(port) + ": " + std::strerror(err));
  }
  return FrameConn(fd);
}

}  // namespace graphct::dist
