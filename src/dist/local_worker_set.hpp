#pragma once

/// \file local_worker_set.hpp
/// Spawn N loopback workers in one call, in either of two modes:
///
///   * threads (default) — each WorkerServer runs serve() on a std::thread
///     in this process. Cheap and sanitizer-friendly; the mode tests and
///     the script engine use.
///   * fork — each worker is a fork()ed child process serving until
///     kShutdown, EOF, or SIGKILL. Genuine multi-process isolation, the
///     mode the CLI and bench use. The listen socket is bound *before*
///     fork(), so ports() is valid immediately and there is no race
///     between spawn and connect.
///
/// Fork mode must be entered before the parent spins up thread pools
/// (fork() only carries the calling thread into the child); the CLI forks
/// workers before any kernel touches OpenMP. Workers default to serial
/// block-local sweeps (`threads` = 1); raising `threads` gives every
/// worker its own OpenMP team — a worker's team is created inside
/// serve(), after fork(), so fork mode composes safely.
///
/// stop() (also the destructor) tears the set down: thread mode unblocks
/// serve() and joins; fork mode reaps children, escalating to SIGKILL for
/// any worker that does not exit promptly — a wedged or fault-injected
/// worker can never hang teardown.

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "dist/worker.hpp"

namespace graphct::dist {

struct LocalWorkerSetOptions {
  int num_workers = 2;
  bool fork_mode = false;  ///< false = in-process threads

  /// OpenMP threads per worker for block-local sweeps (WorkerOptions::
  /// threads). Default 1 keeps a single-core bench host honest: N workers
  /// never oversubscribe it further than N processes already do.
  int threads = 1;

  /// Fault injection: worker `fail_worker` abruptly closes its coordinator
  /// connection after `fail_after` received messages (see WorkerOptions).
  /// fail_worker == -1 disables injection.
  int fail_worker = -1;
  std::int64_t fail_after = -1;
};

class LocalWorkerSet {
 public:
  explicit LocalWorkerSet(const LocalWorkerSetOptions& opts = {});
  ~LocalWorkerSet();
  LocalWorkerSet(const LocalWorkerSet&) = delete;
  LocalWorkerSet& operator=(const LocalWorkerSet&) = delete;

  /// Listen ports, one per worker, valid from construction.
  [[nodiscard]] const std::vector<int>& ports() const { return ports_; }

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(ports_.size());
  }
  [[nodiscard]] bool fork_mode() const { return fork_mode_; }

  /// Tear every worker down (idempotent; called by the destructor).
  void stop();

 private:
  struct ThreadWorker {
    std::unique_ptr<WorkerServer> server;
    std::thread thread;
  };

  bool fork_mode_ = false;
  std::vector<int> ports_;
  std::vector<ThreadWorker> threads_;  // threads mode
  std::vector<pid_t> pids_;            // fork mode
};

}  // namespace graphct::dist
