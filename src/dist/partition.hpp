#pragma once

/// \file partition.hpp
/// 1-D vertex-block partitioning over a CSR graph.
///
/// The dist substrate's data model (docs/DISTRIBUTED.md): the vertex set is
/// cut into N contiguous blocks, block i owning [splits[i], splits[i+1]).
/// Split points are chosen to balance **adjacency entries** (not vertices):
/// for a scale-free graph a vertex-balanced split can put nearly all edges
/// in one block, so each split lands on the first vertex whose row starts
/// at or past i/N of the total entries — a binary search over the CSR
/// offsets array, no edge scan needed.
///
/// Because blocks are contiguous vertex ranges, a worker's share of the
/// graph is literally a slice of the global offsets/adjacency arrays:
/// offsets[begin..end] rebased to zero, adjacency[offsets[begin] ..
/// offsets[end]) with targets keeping their global ids. No relabeling, no
/// ghost tables — the coordinator addresses every vertex by global id and
/// owner(v) is a binary search over the split points.
///
/// Edge-cut accounting (entries whose target lies outside the owning
/// block) and imbalance (max block entries / mean block entries) are
/// computed up front: they are the two numbers that predict communication
/// volume and straggler time, surfaced by `graphct partition` and the
/// script's `partition info`.

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct::dist {

/// One vertex block and its edge accounting.
struct BlockInfo {
  vid begin = 0;         ///< first owned vertex
  vid end = 0;           ///< one past the last owned vertex
  eid entries = 0;       ///< adjacency entries in owned rows
  eid cut_entries = 0;   ///< entries whose target is outside [begin, end)

  [[nodiscard]] vid num_vertices() const { return end - begin; }
};

/// A full 1-D partition: contiguous owner ranges plus accounting.
struct Partition {
  vid num_vertices = 0;
  eid total_entries = 0;
  bool directed = false;
  std::vector<BlockInfo> blocks;

  [[nodiscard]] int num_blocks() const {
    return static_cast<int>(blocks.size());
  }

  /// The block owning vertex v (binary search over the contiguous ranges).
  [[nodiscard]] int owner(vid v) const;

  /// Fraction of adjacency entries whose target lies off-block: the
  /// per-traversal communication bound (0 when the graph has no edges).
  [[nodiscard]] double edge_cut_fraction() const;

  /// Max block entries over mean block entries (1.0 = perfectly balanced;
  /// 0 when the graph has no edges). Bounds straggler time per superstep.
  [[nodiscard]] double imbalance() const;
};

/// Partition `g` into `num_blocks` contiguous, edge-balanced vertex blocks
/// and compute cut/balance accounting. Throws for num_blocks < 1. More
/// blocks than vertices yields trailing empty blocks (legal; workers with
/// no vertices simply answer every step with nothing).
Partition partition_graph(const CsrGraph& g, int num_blocks);

}  // namespace graphct::dist
