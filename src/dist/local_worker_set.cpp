#include "dist/local_worker_set.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>

#include "util/error.hpp"

namespace graphct::dist {

LocalWorkerSet::LocalWorkerSet(const LocalWorkerSetOptions& opts)
    : fork_mode_(opts.fork_mode) {
  GCT_CHECK(opts.num_workers >= 1,
            "dist: a worker set needs at least one worker");
  for (int i = 0; i < opts.num_workers; ++i) {
    WorkerOptions wo;
    wo.port = 0;  // ephemeral: concurrent sets never collide
    wo.threads = opts.threads;
    if (i == opts.fail_worker) wo.fail_after = opts.fail_after;
    auto server = std::make_unique<WorkerServer>(wo);
    ports_.push_back(server->port());
    if (!fork_mode_) {
      ThreadWorker tw;
      tw.server = std::move(server);
      WorkerServer* raw = tw.server.get();
      tw.thread = std::thread([raw] { raw->serve(); });
      threads_.push_back(std::move(tw));
      continue;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      stop();
      throw Error("dist: fork failed spawning worker " + std::to_string(i));
    }
    if (pid == 0) {
      // Child: serve one coordinator, then vanish. _exit (not exit) so the
      // child never runs parent-owned atexit handlers or flushes shared
      // stdio buffers.
      server->serve();
      ::_exit(0);
    }
    // Parent: drop its copy of the listen fd; the child's copy keeps the
    // socket open and accepting.
    server->release();
    server.reset();
    pids_.push_back(pid);
  }
}

LocalWorkerSet::~LocalWorkerSet() { stop(); }

void LocalWorkerSet::stop() {
  for (auto& tw : threads_) {
    if (tw.server) tw.server->stop();
    if (tw.thread.joinable()) tw.thread.join();
    tw.server.reset();
  }
  threads_.clear();

  // Reap forked workers: a cleanly shut-down worker exits on its own
  // almost immediately; give stragglers a short grace period, then KILL.
  // Teardown must never hang on a wedged or fault-injected worker.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno != EINTR)) {
        pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid, SIGKILL);
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  pids_.clear();
}

}  // namespace graphct::dist
