#pragma once

/// \file coordinator.hpp
/// The dist substrate's coordinator: drives N workers through partitioned
/// kernels over the framed wire protocol (dist/wire.hpp).
///
/// graphctd and the CLI embed a Coordinator per distributed job context:
/// connect() performs the hello handshake against already-listening
/// workers, load_graph() partitions a CsrGraph into 1-D vertex blocks
/// (dist/partition.hpp) and ships each worker its slice (plus the
/// partitioned reverse graph when the input is directed, for PageRank's
/// pull), and the three kernel entry points run superstep loops:
///
///   * bfs_distances — frontier exchange per level; the coordinator owns
///     the global distance array, sends each worker its owned frontier
///     slice, and merges candidate discoveries. Levels are unique, so
///     distances are *identical* to the single-process kernel.
///   * components — label propagation with delta exchange; workers mirror
///     the full label array and propose minima from their owned rows. The
///     fixed point (min vertex id per component) is exactly the
///     single-process kernel's canonical labeling.
///   * pagerank — block-row pull SpMV with rank exchange and a
///     convergence reduction; the coordinator computes contributions and
///     the dangling redistribution, workers accumulate owned rows in the
///     single-process kernel's adjacency order. Per-vertex sums match to
///     the last ulp modulo the dangling-mass reduction order.
///   * betweenness — Brandes per source: a forward sweep exchanging
///     per-level frontiers + sigma, then a level-synchronous backward
///     sweep exchanging coefficients (the PR 9 coefficient form — no
///     atomics cross the wire). Workers accumulate owned score blocks
///     across all sources; every sum runs through the canonical 4-lane
///     rows (algs/bc_accum.hpp), so scores are **bit-identical** to
///     single-process fine-mode betweenness_centrality at any worker or
///     worker-thread count.
///
/// Exchanges default to the overlapped engine (set_overlap): requests are
/// queued into per-connection outboxes and a poll() loop drives every
/// socket at once, merging each worker's reply the moment it completes —
/// so one worker's compute overlaps another's transfer, and the
/// coordinator never blocks on a send (the lockstep deadlock-freedom
/// argument, strengthened). All merge callbacks are order-independent
/// (first-assignment + sort, monotone min, or disjoint block copies), so
/// results are identical to lockstep delivery.
///
/// ## Failure semantics
///
/// Any transport failure (dead socket, checksum mismatch, worker kError
/// reply) cancels exactly the in-flight kernel: the coordinator closes all
/// worker connections, records the reason, and throws graphct::Error with
/// an explicit message. Later kernel calls fail fast with the stored
/// reason (degraded()), so a wedged substrate can never hang a job — the
/// embedding layer (Toolkit / interpreter / graphctd job) surfaces the
/// error reply and the registry graph stays fully serviceable through the
/// single-process kernels.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "algs/pagerank.hpp"
#include "dist/partition.hpp"
#include "dist/wire.hpp"
#include "graph/csr_graph.hpp"

namespace graphct::dist {

/// Traffic and superstep accounting, aggregated over all workers.
struct DistStats {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  std::int64_t steps = 0;  ///< kernel supersteps driven
};

class Coordinator {
 public:
  Coordinator() = default;
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Connect to workers listening on 127.0.0.1:ports[i] and handshake.
  void connect(const std::vector<int>& ports);

  /// Partition `g` across the connected workers and ship every block.
  /// Directed graphs also ship the partitioned reverse graph (PageRank's
  /// pull slot). May be called again to load a different graph.
  void load_graph(const CsrGraph& g);

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(conns_.size());
  }
  [[nodiscard]] bool loaded() const { return loaded_; }
  [[nodiscard]] const Partition& partition() const { return partition_; }

  /// Distributed BFS: hop distances from `source` (kNoVertex when
  /// unreached), identical to algs/bfs distances. `max_depth` bounds the
  /// level count (kNoVertex = unbounded).
  std::vector<vid> bfs_distances(vid source, vid max_depth = kNoVertex);

  /// Distributed weak components: canonical min-vertex-id labels,
  /// identical to algs/connected_components' weak_components.
  std::vector<vid> components();

  /// Distributed PageRank, numerically matching algs/pagerank.
  PageRankResult pagerank(const PageRankOptions& opts = {});

  /// Distributed Brandes betweenness from the given sources (undirected
  /// graphs only). Sources run in coordinator order; `batch_sources` > 0
  /// gathers the accumulated score blocks after every batch (the caller
  /// derives it from core's BcPlan memory-budget machinery; 0 = one
  /// batch). Returns unrescaled scores, bit-identical to single-process
  /// fine-mode accumulation over the same source list.
  std::vector<double> betweenness(std::span<const vid> sources,
                                  std::int64_t batch_sources = 0);

  /// Toggle the overlapped exchange engine (default on). Off = the PR 6
  /// lockstep send-all-then-receive-in-order loop, kept for the overlap
  /// ablation in bench/dist_profile.
  void set_overlap(bool on) { overlap_ = on; }
  [[nodiscard]] bool overlap() const { return overlap_; }

  /// Graceful worker shutdown (kShutdown to every live worker). Called by
  /// the destructor; safe to call repeatedly.
  void shutdown();

  /// True once a worker failure has poisoned this coordinator; every
  /// kernel call then throws degraded_reason() without touching sockets.
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] const std::string& degraded_reason() const {
    return degraded_reason_;
  }

  /// Cumulative traffic since connect(), plus supersteps driven.
  [[nodiscard]] DistStats stats() const;

  /// Traffic/steps attributable to the most recent kernel call.
  [[nodiscard]] const DistStats& last_kernel_stats() const {
    return last_kernel_;
  }

 private:
  /// Throws the stored degraded reason, or checks connection state.
  void require_ready() const;
  /// Mark the substrate dead and throw an explicit kernel-cancelled error.
  [[noreturn]] void fail(int worker, const std::string& what,
                         const std::string& detail);
  /// Send one request to worker w (failure -> fail()).
  void send_to(int w, Msg type, std::string payload, const char* what);
  /// Receive worker w's reply, demanding `expect` (kError -> fail()).
  std::string recv_from(int w, Msg expect, const char* what);
  /// One superstep round: send `payloads[w]` (or `payloads[0]` to every
  /// worker when size()==1) as `type`, receive one `expect` reply per
  /// worker, handing each to `on_reply(w, payload)`. Overlapped mode
  /// delivers replies in completion order; callers' merges must be
  /// order-independent. Any failure -> fail().
  void exchange(Msg type, const std::vector<std::string>& payloads,
                Msg expect, const char* what,
                const std::function<void(int, std::string&)>& on_reply);
  /// Worker w's owned slice [offset, offset+len) of a sorted vertex list.
  std::pair<std::int64_t, std::int64_t> owned_span(
      const std::vector<vid>& sorted, int w) const;
  /// Ship one graph's blocks into `slot` using the current partition.
  void ship_blocks(const CsrGraph& g, std::uint8_t slot);
  DistStats snapshot_traffic() const;
  void begin_kernel();
  void end_kernel(const char* kernel, std::int64_t steps);

  std::vector<FrameConn> conns_;
  Partition partition_;
  bool loaded_ = false;
  bool overlap_ = true;
  bool degraded_ = false;
  std::string degraded_reason_;

  // Retained from load_graph for PageRank's contribution pass.
  std::vector<vid> out_degree_;
  bool directed_ = false;
  vid global_n_ = 0;

  std::int64_t total_steps_ = 0;
  DistStats last_kernel_;
  DistStats kernel_base_;
};

}  // namespace graphct::dist
