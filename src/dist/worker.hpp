#pragma once

/// \file worker.hpp
/// The dist substrate's worker: owns one vertex block per graph slot and
/// serves step RPCs to a single coordinator.
///
/// A WorkerServer binds a loopback listen socket at construction (port 0 =
/// ephemeral, the default — the chosen port is readable immediately via
/// port(), which is what lets tests and benches run collision-free), then
/// serve() accepts exactly one coordinator connection and answers frames
/// until kShutdown, peer EOF, or an injected failure.
///
/// Block-local sweeps run through the same bitmap/work-queue engines as
/// the single-process kernels, parallelized across
/// `WorkerOptions::threads` OpenMP threads (default 1 = the exact serial
/// paths; the knob is surfaced as CLI `worker --threads` and script
/// `workers <n> ... threads=<k>`). Every floating-point sum a worker
/// produces is per-vertex exclusive and runs in adjacency order through
/// the canonical 4-lane rows (algs/bc_accum.hpp), so results are
/// bit-identical at any thread count. Kernel state (proposal bitmap,
/// component labels, betweenness mirrors) lives across steps of one kernel
/// and is reset by the corresponding kStart message.
///
/// Failure semantics: a handler exception is reported to the coordinator
/// as a kError frame (the reply slot for that request) and the worker
/// keeps serving; only transport-level failures end the loop. The
/// `fail_after` option abruptly closes the connection after N received
/// messages without replying — deterministic mid-kernel worker death for
/// the coordinator's failure-path tests.

#include <atomic>
#include <cstdint>
#include <vector>

#include "algs/bc_accum.hpp"
#include "dist/wire.hpp"
#include "graph/csr_graph.hpp"
#include "util/bitmap.hpp"
#include "util/work_queue.hpp"

namespace graphct::dist {

struct WorkerOptions {
  int port = 0;  ///< listen port; 0 = kernel-assigned ephemeral port

  /// OpenMP threads for block-local sweeps (1 = serial, the default so a
  /// one-core host is never oversubscribed by a multi-worker set).
  int threads = 1;

  /// Abruptly close the coordinator connection after this many received
  /// messages (fault injection; -1 = never). The dropped message gets no
  /// reply, so the coordinator observes a dead socket mid-kernel.
  std::int64_t fail_after = -1;
};

class WorkerServer {
 public:
  explicit WorkerServer(const WorkerOptions& opts = {});
  ~WorkerServer();
  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// The bound listen port (resolved even when opts.port was 0).
  [[nodiscard]] int port() const { return port_; }

  /// Accept one coordinator and serve frames until kShutdown, EOF, an
  /// injected failure, or stop(). Always returns normally; handler errors
  /// are reported to the coordinator as kError replies.
  void serve();

  /// Unblock a concurrently running serve() (thread-mode teardown).
  /// Idempotent; safe to call from another thread.
  void stop();

  /// Drop this process's copy of the listen fd *without* shutting the
  /// socket down. Fork-mode parents call this after fork(): shutdown()
  /// would kill the shared listening socket under the child, close() alone
  /// leaves the child's copy accepting.
  void release();

 private:
  /// One resident graph block: rebased offsets over the owned range plus
  /// the adjacency slice, targets in global ids.
  struct Slot {
    bool present = false;
    bool directed = false;
    vid global_n = 0;
    vid begin = 0;
    vid end = 0;
    std::vector<eid> offsets;    ///< size end-begin+1, offsets[0] == 0
    std::vector<vid> adjacency;  ///< global target ids

    [[nodiscard]] std::span<const vid> neighbors(vid global_v) const {
      const auto local = static_cast<std::size_t>(global_v - begin);
      const eid lo = offsets[local];
      const eid hi = offsets[local + 1];
      return {adjacency.data() + lo, static_cast<std::size_t>(hi - lo)};
    }
  };

  void handle(Msg type, const std::string& payload, FrameConn& conn);
  void handle_load(WireReader& r, WireWriter& reply);
  void handle_bfs_step(WireReader& r, WireWriter& reply);
  void handle_cc_step(WireReader& r, WireWriter& reply);
  void handle_pr_step(WireReader& r, WireWriter& reply);
  void handle_bc_source(WireReader& r);
  void handle_bc_forward(WireReader& r, WireWriter& reply);
  void handle_bc_sigma(WireReader& r, WireWriter& reply);
  void handle_bc_backward(WireReader& r, WireWriter& reply);

  /// Expand owned frontier rows, proposing every not-yet-proposed
  /// neighbor. Shared by BFS and the betweenness forward sweep: serial at
  /// threads=1 (deterministic candidate order), per-thread candidate lists
  /// above that (the coordinator dedups and sorts either way).
  void expand_owned_rows(const Slot& s, std::span<const std::int64_t> owned,
                         std::vector<vid>& candidates);

  WorkerOptions opts_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  Slot slots_[kNumSlots];

  // BFS / BC forward: vertices already proposed during this search (never
  // worth re-proposing — once proposed at level d they are visited by
  // d+1). A bitmap so multi-threaded expansion can mark with set_atomic.
  Bitmap proposed_;
  // Components: mirrored full label array.
  std::vector<vid> labels_;
  // PageRank: which slot to pull in-edges from, plus scratch buffers.
  std::uint8_t pr_slot_ = kSlotPrimary;
  std::vector<double> contrib_;
  std::vector<double> next_;
  std::vector<std::int64_t> scratch_i64_;
  std::vector<double> scratch_f64_;

  // Betweenness state. Mirrors span the global id space (targets are
  // global); the score block covers only the owned range and accumulates
  // across every source of one kBcStart..kBcScores run.
  vid bc_source_ = kNoVertex;
  std::vector<DistCoef> bc_dc_;    ///< per-vertex {coef, dist} mirror
  std::vector<double> bc_sigma_;   ///< sigma mirror
  std::vector<std::vector<vid>> bc_levels_;  ///< full frontier per level
  std::vector<double> bc_score_;   ///< owned block, local index
  std::vector<double> bc_out_;     ///< per-step reply values
  WorkQueue wq_;                   ///< level scheduler for local sweeps
};

}  // namespace graphct::dist
