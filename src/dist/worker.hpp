#pragma once

/// \file worker.hpp
/// The dist substrate's worker: owns one vertex block per graph slot and
/// serves step RPCs to a single coordinator.
///
/// A WorkerServer binds a loopback listen socket at construction (port 0 =
/// ephemeral, the default — the chosen port is readable immediately via
/// port(), which is what lets tests and benches run collision-free), then
/// serve() accepts exactly one coordinator connection and answers frames
/// until kShutdown, peer EOF, or an injected failure.
///
/// Workers compute serially: each superstep's per-worker work is already
/// the unit of parallelism, and a fork()ed worker must not spin up OpenMP
/// teams it would share with the parent's runtime state. Kernel state
/// (BFS proposal bitmap, component labels) lives across steps of one
/// kernel and is reset by the corresponding kStart message.
///
/// Failure semantics: a handler exception is reported to the coordinator
/// as a kError frame (the reply slot for that request) and the worker
/// keeps serving; only transport-level failures end the loop. The
/// `fail_after` option abruptly closes the connection after N received
/// messages without replying — deterministic mid-kernel worker death for
/// the coordinator's failure-path tests.

#include <atomic>
#include <cstdint>
#include <vector>

#include "dist/wire.hpp"
#include "graph/csr_graph.hpp"

namespace graphct::dist {

struct WorkerOptions {
  int port = 0;  ///< listen port; 0 = kernel-assigned ephemeral port

  /// Abruptly close the coordinator connection after this many received
  /// messages (fault injection; -1 = never). The dropped message gets no
  /// reply, so the coordinator observes a dead socket mid-kernel.
  std::int64_t fail_after = -1;
};

class WorkerServer {
 public:
  explicit WorkerServer(const WorkerOptions& opts = {});
  ~WorkerServer();
  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// The bound listen port (resolved even when opts.port was 0).
  [[nodiscard]] int port() const { return port_; }

  /// Accept one coordinator and serve frames until kShutdown, EOF, an
  /// injected failure, or stop(). Always returns normally; handler errors
  /// are reported to the coordinator as kError replies.
  void serve();

  /// Unblock a concurrently running serve() (thread-mode teardown).
  /// Idempotent; safe to call from another thread.
  void stop();

  /// Drop this process's copy of the listen fd *without* shutting the
  /// socket down. Fork-mode parents call this after fork(): shutdown()
  /// would kill the shared listening socket under the child, close() alone
  /// leaves the child's copy accepting.
  void release();

 private:
  /// One resident graph block: rebased offsets over the owned range plus
  /// the adjacency slice, targets in global ids.
  struct Slot {
    bool present = false;
    bool directed = false;
    vid global_n = 0;
    vid begin = 0;
    vid end = 0;
    std::vector<eid> offsets;    ///< size end-begin+1, offsets[0] == 0
    std::vector<vid> adjacency;  ///< global target ids

    [[nodiscard]] std::span<const vid> neighbors(vid global_v) const {
      const auto local = static_cast<std::size_t>(global_v - begin);
      const eid lo = offsets[local];
      const eid hi = offsets[local + 1];
      return {adjacency.data() + lo, static_cast<std::size_t>(hi - lo)};
    }
  };

  void handle(Msg type, const std::string& payload, FrameConn& conn);
  void handle_load(WireReader& r, WireWriter& reply);
  void handle_bfs_step(WireReader& r, WireWriter& reply);
  void handle_cc_step(WireReader& r, WireWriter& reply);
  void handle_pr_step(WireReader& r, WireWriter& reply);

  WorkerOptions opts_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  Slot slots_[kNumSlots];

  // BFS: vertices already proposed during this search (never worth
  // re-proposing — once proposed at level d they are visited by d+1).
  std::vector<std::uint8_t> proposed_;
  // Components: mirrored full label array.
  std::vector<vid> labels_;
  // PageRank: which slot to pull in-edges from, plus scratch buffers.
  std::uint8_t pr_slot_ = kSlotPrimary;
  std::vector<double> contrib_;
  std::vector<double> next_;
  std::vector<std::int64_t> scratch_i64_;
};

}  // namespace graphct::dist
