#include "dist/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "graph/transforms.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace graphct::dist {

namespace {

obs::Counter& steps_counter(const char* kernel) {
  return obs::registry().counter(
      std::string("gct_dist_steps_total{kernel=\"") +
      obs::prom_label_value(kernel) + "\"}");
}

obs::Histogram& step_seconds() {
  static obs::Histogram& h =
      obs::registry().histogram("gct_dist_step_seconds");
  return h;
}

obs::Counter& failures_counter() {
  static obs::Counter& c =
      obs::registry().counter("gct_dist_worker_failures_total");
  return c;
}

}  // namespace

Coordinator::~Coordinator() { shutdown(); }

void Coordinator::require_ready() const {
  if (degraded_) {
    throw Error("dist: substrate is degraded (" + degraded_reason_ +
                "); restart the workers and reconnect");
  }
  GCT_CHECK(!conns_.empty(), "dist: no workers connected");
}

void Coordinator::fail(int worker, const std::string& what,
                       const std::string& detail) {
  degraded_ = true;
  degraded_reason_ = "worker " + std::to_string(worker) + " failed during " +
                     what + ": " + detail;
  failures_counter().add(1);
  // A dead worker poisons every in-flight exchange: close all sockets so
  // nothing ever blocks on a reply that cannot arrive.
  for (auto& c : conns_) c.close();
  throw Error("dist: " + degraded_reason_ +
              " — job cancelled; the graph remains serviceable through "
              "single-process kernels");
}

void Coordinator::send_to(int w, Msg type, std::string payload,
                          const char* what) {
  try {
    conns_[static_cast<std::size_t>(w)].send(type, payload);
  } catch (const Error& e) {
    fail(w, what, e.what());
  }
}

std::string Coordinator::recv_from(int w, Msg expect, const char* what) {
  Msg type;
  std::string payload;
  try {
    if (!conns_[static_cast<std::size_t>(w)].recv(type, payload)) {
      fail(w, what, "connection closed (worker died)");
    }
  } catch (const Error& e) {
    fail(w, what, e.what());
  }
  if (type == Msg::kError) {
    WireReader r(payload);
    fail(w, what, "worker reported: " + r.str());
  }
  if (type != expect) {
    fail(w, what,
         std::string("unexpected reply ") + msg_name(type) + " (wanted " +
             msg_name(expect) + ")");
  }
  return payload;
}

void Coordinator::exchange(
    Msg type, const std::vector<std::string>& payloads, Msg expect,
    const char* what,
    const std::function<void(int, std::string&)>& on_reply) {
  const int nw = num_workers();
  const bool broadcast = payloads.size() == 1;
  GCT_CHECK(broadcast || static_cast<int>(payloads.size()) == nw,
            "dist: exchange payload count mismatch");

  if (!overlap_) {
    // Lockstep: send everything, then drain replies in worker order. Kept
    // for the overlap ablation (bench/dist_profile --no-overlap rows).
    for (int w = 0; w < nw; ++w) {
      send_to(w, type, payloads[broadcast ? 0 : static_cast<std::size_t>(w)],
              what);
    }
    for (int w = 0; w < nw; ++w) {
      std::string reply = recv_from(w, expect, what);
      on_reply(w, reply);
    }
    return;
  }

  // Overlapped: queue every request into the per-connection outbox (never
  // blocks), then poll() all sockets at once — flushing sends and merging
  // each reply the moment it completes, so a fast worker's reply is
  // consumed while a slow worker is still computing or receiving.
  for (int w = 0; w < nw; ++w) {
    auto& c = conns_[static_cast<std::size_t>(w)];
    try {
      c.queue_send(type,
                   payloads[broadcast ? 0 : static_cast<std::size_t>(w)]);
    } catch (const Error& e) {
      fail(w, what, e.what());
    }
  }

  std::vector<pollfd> fds(static_cast<std::size_t>(nw));
  std::vector<char> done(static_cast<std::size_t>(nw), 0);
  int remaining = nw;
  Msg rtype{};
  std::string rpayload;
  while (remaining > 0) {
    for (int w = 0; w < nw; ++w) {
      auto& p = fds[static_cast<std::size_t>(w)];
      if (done[static_cast<std::size_t>(w)]) {
        p.fd = -1;  // negative fds are ignored by poll()
        p.events = 0;
      } else {
        const auto& c = conns_[static_cast<std::size_t>(w)];
        p.fd = c.fd();
        p.events = POLLIN;
        if (c.send_pending()) p.events |= POLLOUT;
      }
      p.revents = 0;
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(nw), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail(0, what, std::string("poll: ") + std::strerror(errno));
    }
    for (int w = 0; w < nw; ++w) {
      if (done[static_cast<std::size_t>(w)]) continue;
      const short re = fds[static_cast<std::size_t>(w)].revents;
      if (re == 0) continue;
      auto& c = conns_[static_cast<std::size_t>(w)];
      try {
        // On POLLERR/POLLHUP the I/O calls themselves produce the precise
        // error (or drain the final bytes a closing peer already sent).
        if (c.send_pending() && (re & (POLLOUT | POLLERR | POLLHUP)) != 0) {
          c.flush_some();
        }
        if ((re & (POLLIN | POLLERR | POLLHUP)) != 0 &&
            c.recv_some(rtype, rpayload)) {
          if (rtype == Msg::kError) {
            WireReader r(rpayload);
            fail(w, what, "worker reported: " + r.str());
          }
          if (rtype != expect) {
            fail(w, what,
                 std::string("unexpected reply ") + msg_name(rtype) +
                     " (wanted " + msg_name(expect) + ")");
          }
          done[static_cast<std::size_t>(w)] = 1;
          --remaining;
          on_reply(w, rpayload);
        }
      } catch (const Error& e) {
        fail(w, what, e.what());
      }
    }
  }
}

std::pair<std::int64_t, std::int64_t> Coordinator::owned_span(
    const std::vector<vid>& sorted, int w) const {
  const BlockInfo& b = partition_.blocks[static_cast<std::size_t>(w)];
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), b.begin);
  const auto hi = std::lower_bound(lo, sorted.end(), b.end);
  return {lo - sorted.begin(), hi - lo};
}

void Coordinator::connect(const std::vector<int>& ports) {
  GCT_CHECK(!ports.empty(), "dist: need at least one worker port");
  shutdown();
  degraded_ = false;
  degraded_reason_.clear();
  loaded_ = false;
  conns_.clear();
  conns_.reserve(ports.size());
  for (const int port : ports) conns_.push_back(connect_local(port));
  for (int w = 0; w < num_workers(); ++w) {
    WireWriter hello;
    hello.u64(1);  // protocol version
    send_to(w, Msg::kHello, hello.take(), "handshake");
  }
  for (int w = 0; w < num_workers(); ++w) {
    const std::string ack = recv_from(w, Msg::kHelloAck, "handshake");
    WireReader r(ack);
    const std::uint64_t version = r.u64();
    if (version != 1) {
      fail(w, "handshake",
           "worker speaks protocol version " + std::to_string(version));
    }
  }
}

void Coordinator::ship_blocks(const CsrGraph& g, std::uint8_t slot) {
  const auto offsets = g.offsets();
  const auto adj = g.adjacency();
  for (int w = 0; w < num_workers(); ++w) {
    const BlockInfo& b = partition_.blocks[static_cast<std::size_t>(w)];
    const eid lo = offsets[static_cast<std::size_t>(b.begin)];
    const eid hi = offsets[static_cast<std::size_t>(b.end)];
    WireWriter msg;
    msg.u8(slot);
    msg.u8(g.directed() ? 1 : 0);
    msg.i64(g.num_vertices());
    msg.i64(b.begin);
    msg.i64(b.end);
    msg.i64_span(offsets.subspan(static_cast<std::size_t>(b.begin),
                                 static_cast<std::size_t>(b.end - b.begin) +
                                     1));
    msg.i64_span(adj.subspan(static_cast<std::size_t>(lo),
                             static_cast<std::size_t>(hi - lo)));
    send_to(w, Msg::kLoadBlock, msg.take(), "load");
  }
  for (int w = 0; w < num_workers(); ++w) {
    const std::string ack = recv_from(w, Msg::kLoadAck, "load");
    WireReader r(ack);
    const std::uint8_t acked_slot = r.u8();
    const std::int64_t entries = r.i64();
    const BlockInfo& b = partition_.blocks[static_cast<std::size_t>(w)];
    if (acked_slot != slot ||
        (slot == kSlotPrimary && entries != b.entries)) {
      fail(w, "load", "load-ack does not match the shipped block");
    }
  }
}

void Coordinator::load_graph(const CsrGraph& g) {
  require_ready();
  GCT_SPAN("dist.load");
  partition_ = partition_graph(g, num_workers());
  global_n_ = g.num_vertices();
  directed_ = g.directed();
  out_degree_.resize(static_cast<std::size_t>(global_n_));
  for (vid v = 0; v < global_n_; ++v) {
    out_degree_[static_cast<std::size_t>(v)] = g.degree(v);
  }
  ship_blocks(g, kSlotPrimary);
  if (directed_) {
    // Directed PageRank pulls over in-edges; ship the partitioned reverse
    // graph (same owner ranges) as the aux slot.
    ship_blocks(reverse(g), kSlotReverse);
  }
  loaded_ = true;
}

DistStats Coordinator::snapshot_traffic() const {
  DistStats s;
  for (const auto& c : conns_) {
    const Traffic& t = c.traffic();
    s.messages_sent += t.messages_sent;
    s.messages_received += t.messages_received;
    s.bytes_sent += t.bytes_sent;
    s.bytes_received += t.bytes_received;
  }
  s.steps = total_steps_;
  return s;
}

DistStats Coordinator::stats() const { return snapshot_traffic(); }

void Coordinator::begin_kernel() {
  require_ready();
  GCT_CHECK(loaded_, "dist: no graph loaded (call load_graph first)");
  kernel_base_ = snapshot_traffic();
}

void Coordinator::end_kernel(const char* kernel, std::int64_t steps) {
  total_steps_ += steps;
  const DistStats now = snapshot_traffic();
  last_kernel_.messages_sent = now.messages_sent - kernel_base_.messages_sent;
  last_kernel_.messages_received =
      now.messages_received - kernel_base_.messages_received;
  last_kernel_.bytes_sent = now.bytes_sent - kernel_base_.bytes_sent;
  last_kernel_.bytes_received =
      now.bytes_received - kernel_base_.bytes_received;
  last_kernel_.steps = steps;
  steps_counter(kernel).add(steps);
}

std::vector<vid> Coordinator::bfs_distances(vid source, vid max_depth) {
  begin_kernel();
  GCT_CHECK(source >= 0 && source < global_n_,
            "dist bfs: source out of range");
  obs::KernelScope scope("dist.bfs");
  std::vector<vid> dist(static_cast<std::size_t>(global_n_), kNoVertex);
  dist[static_cast<std::size_t>(source)] = 0;

  exchange(Msg::kBfsStart, {std::string()}, Msg::kAck, "bfs",
           [](int, std::string&) {});

  std::vector<vid> frontier{source};
  std::vector<std::string> payloads(
      static_cast<std::size_t>(num_workers()));
  std::vector<std::int64_t> candidates;
  vid level = 0;
  std::int64_t steps = 0;
  while (!frontier.empty() &&
         (max_depth == kNoVertex || level < max_depth)) {
    GCT_SPAN("dist.bfs.step");
    Timer step_timer;
    // The frontier is sorted ascending, so each worker's owned slice is
    // one contiguous range: [lower_bound(begin), lower_bound(end)).
    for (int w = 0; w < num_workers(); ++w) {
      const auto [off, len] = owned_span(frontier, w);
      WireWriter msg;
      msg.i64_span(std::span<const std::int64_t>(
          frontier.data() + off, static_cast<std::size_t>(len)));
      payloads[static_cast<std::size_t>(w)] = msg.take();
    }
    std::vector<vid> next;
    // First-assignment dedup then a sort: merge order never matters.
    exchange(Msg::kBfsStep, payloads, Msg::kBfsFrontier, "bfs",
             [&](int, std::string& reply) {
               WireReader r(reply);
               r.i64_vec(candidates);
               for (const std::int64_t c : candidates) {
                 auto& d = dist[static_cast<std::size_t>(c)];
                 if (d == kNoVertex) {
                   d = level + 1;
                   next.push_back(static_cast<vid>(c));
                 }
               }
             });
    std::sort(next.begin(), next.end());
    frontier.swap(next);
    ++level;
    ++steps;
    step_seconds().observe(step_timer.seconds());
    obs::add_work(static_cast<std::int64_t>(frontier.size()), 0);
  }
  end_kernel("bfs", steps);
  return dist;
}

std::vector<vid> Coordinator::components() {
  begin_kernel();
  obs::KernelScope scope("dist.components");
  std::vector<vid> labels(static_cast<std::size_t>(global_n_));
  for (vid v = 0; v < global_n_; ++v) {
    labels[static_cast<std::size_t>(v)] = v;
  }

  exchange(Msg::kCcStart, {std::string()}, Msg::kAck, "components",
           [](int, std::string&) {});

  // Delta exchange: broadcast the vertices whose master label changed last
  // round, collect proposals, repeat until a round changes nothing.
  std::vector<std::int64_t> delta_v;
  std::vector<std::int64_t> delta_l;
  std::vector<std::int64_t> prop_v;
  std::vector<std::int64_t> prop_l;
  std::vector<vid> changed;
  std::int64_t steps = 0;
  for (;;) {
    GCT_SPAN("dist.components.step");
    Timer step_timer;
    WireWriter msg;
    msg.i64_span(delta_v);
    msg.i64_span(delta_l);
    changed.clear();
    // Monotone min-merge: applying workers' proposals in any order
    // reaches the same labels, so completion-order delivery is safe.
    exchange(Msg::kCcStep, {msg.take()}, Msg::kCcDelta, "components",
             [&](int w, std::string& reply) {
               WireReader r(reply);
               r.i64_vec(prop_v);
               r.i64_vec(prop_l);
               if (prop_v.size() != prop_l.size()) {
                 fail(w, "components", "mismatched delta arrays");
               }
               for (std::size_t i = 0; i < prop_v.size(); ++i) {
                 auto& cur = labels[static_cast<std::size_t>(prop_v[i])];
                 if (prop_l[i] < cur) {
                   cur = static_cast<vid>(prop_l[i]);
                   changed.push_back(static_cast<vid>(prop_v[i]));
                 }
               }
             });
    ++steps;
    step_seconds().observe(step_timer.seconds());
    if (changed.empty()) break;
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    delta_v.assign(changed.begin(), changed.end());
    delta_l.resize(changed.size());
    for (std::size_t i = 0; i < changed.size(); ++i) {
      delta_l[i] = labels[static_cast<std::size_t>(changed[i])];
    }
  }
  end_kernel("components", steps);
  return labels;
}

PageRankResult Coordinator::pagerank(const PageRankOptions& opts) {
  begin_kernel();
  GCT_CHECK(opts.damping > 0.0 && opts.damping < 1.0,
            "pagerank: damping must be in (0,1)");
  GCT_CHECK(opts.max_iterations >= 1, "pagerank: need >= 1 iteration");
  obs::KernelScope scope("dist.pagerank");
  PageRankResult result;
  if (global_n_ == 0) return result;

  {
    WireWriter msg;
    msg.u8(directed_ ? kSlotReverse : kSlotPrimary);
    exchange(Msg::kPrStart, {msg.take()}, Msg::kAck, "pagerank",
             [](int, std::string&) {});
  }

  const double inv_n = 1.0 / static_cast<double>(global_n_);
  std::vector<double> rank(static_cast<std::size_t>(global_n_), inv_n);
  std::vector<double> next(static_cast<std::size_t>(global_n_), 0.0);
  std::vector<double> contrib(static_cast<std::size_t>(global_n_), 0.0);
  std::vector<double> block;
  std::int64_t steps = 0;

  for (std::int64_t it = 0; it < opts.max_iterations; ++it) {
    GCT_SPAN("dist.pagerank.step");
    Timer step_timer;
    double dangling = 0.0;
    for (vid v = 0; v < global_n_; ++v) {
      const vid d = out_degree_[static_cast<std::size_t>(v)];
      if (d == 0) {
        dangling += rank[static_cast<std::size_t>(v)];
        contrib[static_cast<std::size_t>(v)] = 0.0;
      } else {
        contrib[static_cast<std::size_t>(v)] =
            rank[static_cast<std::size_t>(v)] / static_cast<double>(d);
      }
    }
    const double base =
        (1.0 - opts.damping) * inv_n + opts.damping * dangling * inv_n;

    WireWriter msg;
    msg.f64(base);
    msg.f64(opts.damping);
    msg.f64_span(contrib);
    // Disjoint block copies: any completion order lands the same ranks.
    exchange(Msg::kPrStep, {msg.take()}, Msg::kPrRanks, "pagerank",
             [&](int w, std::string& reply) {
               WireReader r(reply);
               r.f64_vec(block);
               const BlockInfo& b =
                   partition_.blocks[static_cast<std::size_t>(w)];
               if (static_cast<vid>(block.size()) != b.num_vertices()) {
                 fail(w, "pagerank", "rank block length mismatch");
               }
               std::copy(block.begin(), block.end(),
                         next.begin() +
                             static_cast<std::ptrdiff_t>(b.begin));
             });

    double delta = 0.0;
    for (vid v = 0; v < global_n_; ++v) {
      delta += std::abs(next[static_cast<std::size_t>(v)] -
                        rank[static_cast<std::size_t>(v)]);
    }
    rank.swap(next);
    result.iterations = it + 1;
    result.residual = delta;
    ++steps;
    step_seconds().observe(step_timer.seconds());
    if (delta < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.score = std::move(rank);
  end_kernel("pagerank", steps);
  return result;
}

std::vector<double> Coordinator::betweenness(std::span<const vid> sources,
                                             std::int64_t batch_sources) {
  begin_kernel();
  GCT_CHECK(!directed_,
            "dist bc: distributed betweenness requires an undirected graph");
  GCT_CHECK(!sources.empty(), "dist bc: need at least one source");
  for (const vid s : sources) {
    GCT_CHECK(s >= 0 && s < global_n_, "dist bc: source out of range");
  }
  obs::KernelScope scope("dist.bc");
  std::vector<double> score(static_cast<std::size_t>(global_n_), 0.0);
  std::int64_t steps = 0;

  const auto noop = [](int, std::string&) {};
  exchange(Msg::kBcStart, {std::string()}, Msg::kAck, "bc", noop);
  ++steps;

  // Coordinator-side per-source state. `dist` dedups candidate proposals
  // (workers propose across block boundaries); `levels` keeps every
  // frontier because the backward sweep re-slices them per worker.
  std::vector<vid> dist(static_cast<std::size_t>(global_n_));
  std::vector<std::vector<vid>> levels;
  std::vector<double> sigma_prev;
  std::vector<double> values;
  std::vector<std::int64_t> candidates;
  std::vector<double> block;

  // Copy one worker's reply values into its owned slice of a buffer
  // aligned to the sorted frontier `f`.
  const auto place_slice = [&](const std::vector<vid>& f,
                               std::vector<double>& out, int w,
                               const char* what, std::string& reply) {
    WireReader r(reply);
    r.f64_vec(block);
    const auto [off, len] = owned_span(f, w);
    if (static_cast<std::int64_t>(block.size()) != len) {
      fail(w, what, "value slice length mismatch");
    }
    std::copy(block.begin(), block.end(),
              out.begin() + static_cast<std::ptrdiff_t>(off));
  };

  const std::int64_t num_sources = static_cast<std::int64_t>(sources.size());
  const std::int64_t batch =
      batch_sources > 0 ? batch_sources : num_sources;
  for (std::int64_t b0 = 0; b0 < num_sources; b0 += batch) {
    const std::int64_t b1 = std::min(b0 + batch, num_sources);
    for (std::int64_t si = b0; si < b1; ++si) {
      const vid source = sources[static_cast<std::size_t>(si)];
      std::fill(dist.begin(), dist.end(), kNoVertex);
      dist[static_cast<std::size_t>(source)] = 0;
      levels.clear();
      levels.push_back({source});
      sigma_prev.assign(1, 1.0);
      {
        WireWriter msg;
        msg.i64(source);
        exchange(Msg::kBcSource, {msg.take()}, Msg::kAck, "bc", noop);
        ++steps;
      }

      // Forward: per level, (A) broadcast sigma of the settled frontier
      // and collect next-level candidates, (B) broadcast the merged
      // frontier and collect its sigma slices. The loop's final kBcForward
      // (empty candidates) has already scattered the deepest sigma, so
      // the backward sweep needs no extra priming round.
      {
        GCT_SPAN("dist.bc.forward");
        for (std::int64_t d = 1;; ++d) {
          Timer step_timer;
          std::vector<vid> next;
          {
            GCT_SPAN("dist.bc.exchange");
            WireWriter msg;
            msg.u64(static_cast<std::uint64_t>(d));
            msg.f64_span(sigma_prev);
            exchange(Msg::kBcForward, {msg.take()}, Msg::kBcCandidates,
                     "bc.forward", [&](int, std::string& reply) {
                       WireReader r(reply);
                       r.i64_vec(candidates);
                       for (const std::int64_t c : candidates) {
                         auto& dc = dist[static_cast<std::size_t>(c)];
                         if (dc == kNoVertex) {
                           dc = d;
                           next.push_back(static_cast<vid>(c));
                         }
                       }
                     });
            ++steps;
          }
          if (next.empty()) {
            step_seconds().observe(step_timer.seconds());
            break;
          }
          std::sort(next.begin(), next.end());
          values.resize(next.size());
          {
            GCT_SPAN("dist.bc.exchange");
            WireWriter msg;
            msg.u64(static_cast<std::uint64_t>(d));
            msg.i64_span(next);
            exchange(Msg::kBcSigma, {msg.take()}, Msg::kBcSigmaBlock,
                     "bc.forward", [&](int w, std::string& reply) {
                       place_slice(next, values, w, "bc.forward", reply);
                     });
            ++steps;
          }
          obs::add_work(static_cast<std::int64_t>(next.size()), 0);
          sigma_prev = values;
          levels.push_back(std::move(next));
          step_seconds().observe(step_timer.seconds());
        }
      }

      // Backward, deepest level first: broadcast the coefficients one
      // level deeper (empty at the deepest level) and collect this
      // level's coefficient slices. Workers fold dependency deltas into
      // their owned score blocks as they go.
      {
        GCT_SPAN("dist.bc.backward");
        std::vector<double> coef_below;
        for (std::int64_t d = static_cast<std::int64_t>(levels.size()) - 1;
             d >= 0; --d) {
          Timer step_timer;
          const std::vector<vid>& f = levels[static_cast<std::size_t>(d)];
          values.resize(f.size());
          {
            GCT_SPAN("dist.bc.exchange");
            WireWriter msg;
            msg.u64(static_cast<std::uint64_t>(d));
            msg.f64_span(coef_below);
            exchange(Msg::kBcBackward, {msg.take()}, Msg::kBcCoefBlock,
                     "bc.backward", [&](int w, std::string& reply) {
                       place_slice(f, values, w, "bc.backward", reply);
                     });
            ++steps;
          }
          coef_below.swap(values);
          step_seconds().observe(step_timer.seconds());
        }
      }
    }

    // Batch boundary: gather the accumulated owned score blocks. Workers
    // keep accumulating across batches, so each gather overwrites the
    // coordinator's copy — the last one is the full sum.
    {
      GCT_SPAN("dist.bc.gather");
      exchange(Msg::kBcScores, {std::string()}, Msg::kBcScoreBlock,
               "bc.gather", [&](int w, std::string& reply) {
                 WireReader r(reply);
                 r.f64_vec(block);
                 const BlockInfo& bi =
                     partition_.blocks[static_cast<std::size_t>(w)];
                 if (static_cast<vid>(block.size()) != bi.num_vertices()) {
                   fail(w, "bc.gather", "score block length mismatch");
                 }
                 std::copy(block.begin(), block.end(),
                           score.begin() +
                               static_cast<std::ptrdiff_t>(bi.begin));
               });
      ++steps;
    }
  }

  end_kernel("bc", steps);
  return score;
}

void Coordinator::shutdown() {
  for (std::size_t w = 0; w < conns_.size(); ++w) {
    auto& c = conns_[w];
    if (!c.valid()) continue;
    try {
      c.send(Msg::kShutdown, "");
      Msg type;
      std::string payload;
      c.recv(type, payload);  // best-effort ack
    } catch (const std::exception&) {
      // Teardown is best-effort by design; a dead worker is already gone.
    }
    c.close();
  }
}

}  // namespace graphct::dist
