#include "dist/worker.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <omp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct::dist {

namespace {

// Local-sweep chunking, matching the single-process level scheduler
// (kBcLevelChunk / kBcLevelSerialBelow in core/betweenness.cpp).
constexpr std::int64_t kSweepChunk = 64;
constexpr std::int64_t kSweepSerialBelow = 512;

/// Owned contiguous slice of a sorted global vertex list: blocks are
/// contiguous id ranges, so ownership is two binary searches.
std::span<const std::int64_t> owned_slice(const std::vector<vid>& sorted,
                                          vid begin, vid end) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), begin);
  const auto hi = std::lower_bound(lo, sorted.end(), end);
  return {sorted.data() + (lo - sorted.begin()),
          static_cast<std::size_t>(hi - lo)};
}

}  // namespace

WorkerServer::WorkerServer(const WorkerOptions& opts) : opts_(opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GCT_CHECK(fd >= 0, "dist worker: cannot create listen socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 1) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("dist worker: cannot bind 127.0.0.1:" +
                std::to_string(opts.port) + ": " + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  GCT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
            "dist worker: getsockname failed");
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
}

WorkerServer::~WorkerServer() { stop(); }

void WorkerServer::stop() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a racing accept(); close() alone may not.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void WorkerServer::release() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void WorkerServer::serve() {
  int cfd = -1;
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;  // stopped before a coordinator arrived
    cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd >= 0) break;
    if (errno == EINTR) continue;
    return;  // listen socket closed under us (stop()) or fatal error
  }
  stop();  // one coordinator per worker; no further accepts
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  FrameConn conn(cfd);

  std::int64_t received = 0;
  Msg type;
  std::string payload;
  for (;;) {
    try {
      if (!conn.recv(type, payload)) return;  // coordinator hung up
    } catch (const std::exception&) {
      return;  // transport corrupt/dead; nothing to report it on
    }
    ++received;
    if (opts_.fail_after >= 0 && received > opts_.fail_after) {
      // Injected death: drop the connection without replying, exactly as
      // a crashed worker would.
      conn.close();
      return;
    }
    if (type == Msg::kShutdown) {
      try {
        conn.send(Msg::kAck, "");
      } catch (const std::exception&) {
      }
      return;
    }
    try {
      handle(type, payload, conn);
    } catch (const std::exception& e) {
      // Handler failure is a protocol-level error: report it in the reply
      // slot and keep serving. Only a failing send ends the loop.
      try {
        WireWriter w;
        w.str(e.what());
        conn.send(Msg::kError, w.take());
      } catch (const std::exception&) {
        return;
      }
    }
  }
}

void WorkerServer::handle(Msg type, const std::string& payload,
                          FrameConn& conn) {
  WireReader r(payload);
  WireWriter reply;
  Msg reply_type = Msg::kAck;
  switch (type) {
    case Msg::kHello: {
      const std::uint64_t version = r.u64();
      GCT_CHECK(version == 1,
                "dist worker: unsupported protocol version " +
                    std::to_string(version));
      reply.u64(1);
      reply.u64(static_cast<std::uint64_t>(::getpid()));
      reply_type = Msg::kHelloAck;
      break;
    }
    case Msg::kLoadBlock:
      handle_load(r, reply);
      reply_type = Msg::kLoadAck;
      break;
    case Msg::kBfsStart: {
      const auto& s = slots_[kSlotPrimary];
      GCT_CHECK(s.present, "dist worker: bfs-start before load-block");
      proposed_.resize(s.global_n);
      proposed_.clear();
      break;
    }
    case Msg::kBfsStep:
      handle_bfs_step(r, reply);
      reply_type = Msg::kBfsFrontier;
      break;
    case Msg::kCcStart: {
      const auto& s = slots_[kSlotPrimary];
      GCT_CHECK(s.present, "dist worker: cc-start before load-block");
      labels_.resize(static_cast<std::size_t>(s.global_n));
      for (vid v = 0; v < s.global_n; ++v) {
        labels_[static_cast<std::size_t>(v)] = v;
      }
      break;
    }
    case Msg::kCcStep:
      handle_cc_step(r, reply);
      reply_type = Msg::kCcDelta;
      break;
    case Msg::kPrStart: {
      pr_slot_ = r.u8();
      GCT_CHECK(pr_slot_ < kNumSlots && slots_[pr_slot_].present,
                "dist worker: pr-start references an unloaded graph slot");
      break;
    }
    case Msg::kPrStep:
      handle_pr_step(r, reply);
      reply_type = Msg::kPrRanks;
      break;
    case Msg::kBcStart: {
      const auto& s = slots_[kSlotPrimary];
      GCT_CHECK(s.present, "dist worker: bc-start before load-block");
      GCT_CHECK(!s.directed,
                "dist worker: distributed betweenness is undirected-only");
      bc_score_.assign(static_cast<std::size_t>(s.end - s.begin), 0.0);
      bc_dc_.assign(static_cast<std::size_t>(s.global_n),
                    DistCoef{0.0, kNoVertex});
      bc_sigma_.assign(static_cast<std::size_t>(s.global_n), 0.0);
      bc_levels_.clear();
      bc_source_ = kNoVertex;
      break;
    }
    case Msg::kBcSource:
      handle_bc_source(r);
      break;
    case Msg::kBcForward:
      handle_bc_forward(r, reply);
      reply_type = Msg::kBcCandidates;
      break;
    case Msg::kBcSigma:
      handle_bc_sigma(r, reply);
      reply_type = Msg::kBcSigmaBlock;
      break;
    case Msg::kBcBackward:
      handle_bc_backward(r, reply);
      reply_type = Msg::kBcCoefBlock;
      break;
    case Msg::kBcScores: {
      const auto& s = slots_[kSlotPrimary];
      GCT_CHECK(s.present && static_cast<vid>(bc_score_.size()) ==
                                 s.end - s.begin,
                "dist worker: bc-scores before bc-start");
      reply.f64_span(bc_score_);
      reply_type = Msg::kBcScoreBlock;
      break;
    }
    default:
      throw Error(std::string("dist worker: unexpected message ") +
                  msg_name(type));
  }
  conn.send(reply_type, reply.take());
}

void WorkerServer::handle_load(WireReader& r, WireWriter& reply) {
  const std::uint8_t slot_id = r.u8();
  GCT_CHECK(slot_id < kNumSlots, "dist worker: bad graph slot");
  Slot& s = slots_[slot_id];
  s.directed = r.u8() != 0;
  s.global_n = r.i64();
  s.begin = r.i64();
  s.end = r.i64();
  GCT_CHECK(s.begin >= 0 && s.begin <= s.end && s.end <= s.global_n,
            "dist worker: bad block range");
  r.i64_vec(s.offsets);
  r.i64_vec(s.adjacency);
  GCT_CHECK(static_cast<vid>(s.offsets.size()) == s.end - s.begin + 1,
            "dist worker: offsets length does not match block range");
  // Rebase to zero so neighbors() indexes the local adjacency slice.
  const eid base = s.offsets.empty() ? 0 : s.offsets.front();
  for (auto& o : s.offsets) o -= base;
  GCT_CHECK(s.offsets.empty() ||
                s.offsets.back() == static_cast<eid>(s.adjacency.size()),
            "dist worker: adjacency length does not match offsets");
  s.present = true;
  reply.u8(slot_id);
  reply.i64(static_cast<std::int64_t>(s.adjacency.size()));
}

void WorkerServer::expand_owned_rows(const Slot& s,
                                     std::span<const std::int64_t> owned,
                                     std::vector<vid>& candidates) {
  candidates.clear();
  const auto count = static_cast<std::int64_t>(owned.size());
  if (opts_.threads <= 1 || count < kSweepSerialBelow) {
    for (const std::int64_t u : owned) {
      GCT_CHECK(u >= s.begin && u < s.end,
                "dist worker: frontier vertex not owned by this block");
      // The frontier vertex itself is visited; never propose it again.
      proposed_.set(static_cast<vid>(u));
      for (const vid v : s.neighbors(static_cast<vid>(u))) {
        if (!proposed_.test(v)) {
          proposed_.set(v);
          candidates.push_back(v);
        }
      }
    }
    return;
  }
  // Parallel expansion: per-thread candidate lists, bitmap dedup with
  // set_atomic. Two threads racing on the same neighbor may both emit it
  // (test-then-set is not atomic as a pair) — benign, the coordinator
  // dedups against its global distance array and sorts the merged
  // frontier, so the resulting levels are identical to the serial path's.
  std::vector<std::vector<vid>> per_thread(
      static_cast<std::size_t>(opts_.threads));
#pragma omp parallel num_threads(opts_.threads)
  {
    auto& mine = per_thread[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t i = 0; i < count; ++i) {
      const auto u = static_cast<vid>(owned[static_cast<std::size_t>(i)]);
      if (u < s.begin || u >= s.end) continue;  // checked below
      proposed_.set_atomic(u);
      for (const vid v : s.neighbors(u)) {
        if (!proposed_.test(v)) {
          proposed_.set_atomic(v);
          mine.push_back(v);
        }
      }
    }
  }
  for (const std::int64_t u : owned) {
    GCT_CHECK(u >= s.begin && u < s.end,
              "dist worker: frontier vertex not owned by this block");
  }
  for (auto& pt : per_thread) {
    candidates.insert(candidates.end(), pt.begin(), pt.end());
  }
}

void WorkerServer::handle_bfs_step(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && proposed_.size() == s.global_n,
            "dist worker: bfs-step before bfs-start");
  r.i64_vec(scratch_i64_);
  std::vector<vid> candidates;
  expand_owned_rows(s, scratch_i64_, candidates);
  reply.i64_span(candidates);
}

void WorkerServer::handle_cc_step(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && !labels_.empty(),
            "dist worker: cc-step before cc-start");
  // Apply the coordinator's merged delta first (monotone min, idempotent).
  r.i64_vec(scratch_i64_);
  std::vector<std::int64_t> delta_labels;
  r.i64_vec(delta_labels);
  GCT_CHECK(scratch_i64_.size() == delta_labels.size(),
            "dist worker: cc delta arrays disagree");
  for (std::size_t i = 0; i < scratch_i64_.size(); ++i) {
    const auto v = static_cast<std::size_t>(scratch_i64_[i]);
    GCT_CHECK(v < labels_.size(), "dist worker: cc delta vertex out of range");
    if (delta_labels[i] < labels_[v]) labels_[v] = delta_labels[i];
  }

  // Scan owned rows, absorbing labels across each arc in both directions
  // (weak components: a directed arc still merges its endpoints). Updates
  // apply locally as they are found — monotone minima converge to the same
  // fixed point in any order — and every locally lowered vertex is
  // proposed to the coordinator.
  std::vector<vid> changed;
  if (opts_.threads <= 1 || s.end - s.begin < kSweepSerialBelow) {
    auto lower = [&](vid v, vid label) {
      auto& cur = labels_[static_cast<std::size_t>(v)];
      if (label < cur) {
        cur = label;
        changed.push_back(v);  // may repeat across arcs; deduped below
      }
    };
    for (vid u = s.begin; u < s.end; ++u) {
      for (const vid v : s.neighbors(u)) {
        const vid lu = labels_[static_cast<std::size_t>(u)];
        const vid lv = labels_[static_cast<std::size_t>(v)];
        if (lu < lv) {
          lower(v, lu);
        } else if (lv < lu) {
          lower(u, lv);
        }
      }
    }
  } else {
    // Parallel absorption: atomic_min keeps every lowering monotone, and
    // per-thread changed lists merge below. A round may propose slightly
    // different intermediates than the serial scan (absorption chains
    // cascade differently across threads), but the fixed point — the
    // canonical min-vertex-id labeling — is identical, which is what the
    // kernel-level parity gates assert.
    std::vector<std::vector<vid>> per_thread(
        static_cast<std::size_t>(opts_.threads));
#pragma omp parallel num_threads(opts_.threads)
    {
      auto& mine = per_thread[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 256)
      for (vid u = s.begin; u < s.end; ++u) {
        for (const vid v : s.neighbors(u)) {
          const vid lu = labels_[static_cast<std::size_t>(u)];
          const vid lv = labels_[static_cast<std::size_t>(v)];
          if (lu < lv) {
            if (atomic_min(labels_[static_cast<std::size_t>(v)], lu)) {
              mine.push_back(v);
            }
          } else if (lv < lu) {
            if (atomic_min(labels_[static_cast<std::size_t>(u)], lv)) {
              mine.push_back(u);
            }
          }
        }
      }
    }
    for (auto& pt : per_thread) {
      changed.insert(changed.end(), pt.begin(), pt.end());
    }
  }
  // Dedup: a vertex lowered several times reports its final label once.
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  std::vector<std::int64_t> out_labels(changed.size());
  for (std::size_t i = 0; i < changed.size(); ++i) {
    out_labels[i] = labels_[static_cast<std::size_t>(changed[i])];
  }
  reply.i64_span(changed);
  reply.i64_span(out_labels);
}

void WorkerServer::handle_pr_step(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[pr_slot_];
  GCT_CHECK(s.present, "dist worker: pr-step before pr-start");
  const double base = r.f64();
  const double damping = r.f64();
  r.f64_vec(contrib_);
  GCT_CHECK(static_cast<vid>(contrib_.size()) == s.global_n,
            "dist worker: contrib vector length mismatch");
  next_.resize(static_cast<std::size_t>(s.end - s.begin));
  // Per-vertex accumulation in adjacency order: floating-point addition is
  // order-dependent, and this order is exactly the single-process
  // kernel's, which is what makes per-vertex sums match it bitwise given
  // identical inputs. Rows parallelize freely — each sum is per-vertex
  // exclusive and internally sequential, so the result is bit-identical at
  // any thread count (stealing_for runs inline at threads=1).
  stealing_for(wq_, s.begin, s.end, kSweepChunk, kSweepSerialBelow,
               opts_.threads, [&](std::int64_t b, std::int64_t e) {
                 for (vid v = b; v < e; ++v) {
                   double acc = 0.0;
                   for (const vid u : s.neighbors(v)) {
                     acc += contrib_[static_cast<std::size_t>(u)];
                   }
                   next_[static_cast<std::size_t>(v - s.begin)] =
                       base + damping * acc;
                 }
               });
  reply.f64_span(next_);
}

// ---------------------------------------------------------------------------
// Distributed betweenness handlers. Protocol per source (docs/DISTRIBUTED.md
// "Distributed betweenness"):
//
//   kBcSource               per-source reset; F_0 = {source}
//   per level d = 1, 2, ...:
//     kBcForward {d, sigma(F_{d-1})}   -> kBcCandidates {proposals}
//     kBcSigma   {d, F_d}              -> kBcSigmaBlock {sigma, owned slice}
//   per level d = D, ..., 0:
//     kBcBackward {d, coef(F_{d+1})}   -> kBcCoefBlock  {coef, owned slice}
//
// Every sum runs through the canonical 4-lane rows of algs/bc_accum.hpp
// over each vertex's FULL adjacency row (targets are global ids), with the
// same predicates as the single-process engine — which is why the scores
// are bit-identical to fine-mode betweenness_centrality, per worker count
// and per worker thread count.

void WorkerServer::handle_bc_source(WireReader& r) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && !bc_dc_.empty(),
            "dist worker: bc-source before bc-start");
  const vid source = r.i64();
  GCT_CHECK(source >= 0 && source < s.global_n,
            "dist worker: bc source out of range");
  // Per-source O(n) distance reset, the mirror of the single-process
  // engine's per-source distance load. Stale coef halves are harmless:
  // coef is only ever read one level up, after being rewritten.
  const vid n = s.global_n;
  DistCoef* dc = bc_dc_.data();
#pragma omp parallel for schedule(static) num_threads(opts_.threads) \
    if (opts_.threads > 1)
  for (vid v = 0; v < n; ++v) dc[v].dist = kNoVertex;
  proposed_.resize(n);
  proposed_.clear();
  bc_levels_.clear();
  bc_levels_.push_back({source});
  bc_source_ = source;
  dc[source].dist = 0;
  bc_sigma_[static_cast<std::size_t>(source)] = 1.0;
  proposed_.set(source);
}

void WorkerServer::handle_bc_forward(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && bc_source_ != kNoVertex,
            "dist worker: bc-forward before bc-source");
  const auto level = static_cast<std::int64_t>(r.u64());
  r.f64_vec(scratch_f64_);
  GCT_CHECK(level >= 1 &&
                level == static_cast<std::int64_t>(bc_levels_.size()),
            "dist worker: bc-forward level out of sequence");
  const auto& prev = bc_levels_.back();  // F_{level-1}, sorted
  GCT_CHECK(scratch_f64_.size() == prev.size(),
            "dist worker: bc sigma span does not match the frontier");
  // Scatter sigma of the previous frontier into the mirror: any owned
  // vertex of the NEXT level may pull across the block boundary.
  for (std::size_t i = 0; i < prev.size(); ++i) {
    bc_sigma_[static_cast<std::size_t>(prev[i])] = scratch_f64_[i];
  }
  std::vector<vid> candidates;
  expand_owned_rows(s, owned_slice(prev, s.begin, s.end), candidates);
  reply.i64_span(candidates);
}

void WorkerServer::handle_bc_sigma(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && bc_source_ != kNoVertex,
            "dist worker: bc-sigma before bc-source");
  const auto level = static_cast<std::int64_t>(r.u64());
  r.i64_vec(scratch_i64_);
  GCT_CHECK(level == static_cast<std::int64_t>(bc_levels_.size()),
            "dist worker: bc-sigma level out of sequence");
  bc_levels_.emplace_back(scratch_i64_.begin(), scratch_i64_.end());
  const auto& f = bc_levels_.back();
  // Mark the confirmed frontier proposed everywhere (so no worker proposes
  // it again next level) and scatter its depth into the mirror.
  DistCoef* dc = bc_dc_.data();
  for (const vid v : f) {
    proposed_.set(v);
    dc[v].dist = level;
  }
  // Pull sigma for the owned slice: each vertex sums sigma over its FULL
  // row's depth-minus-one neighbors — the same 4-lane row and predicate as
  // pull_sigma_level / expand_bottom_up_sigma, hence bitwise-equal sums.
  const auto slice = owned_slice(f, s.begin, s.end);
  const auto count = static_cast<std::int64_t>(slice.size());
  bc_out_.resize(slice.size());
  const double* sg = bc_sigma_.data();
  const std::int64_t prev_level = level - 1;
  stealing_for(wq_, 0, count, kSweepChunk, kSweepSerialBelow, opts_.threads,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) {
                   const auto v =
                       static_cast<vid>(slice[static_cast<std::size_t>(i)]);
                   const auto nbrs = s.neighbors(v);
                   const double sv = bc_pull_sigma_row(
                       nbrs.data(), static_cast<std::int64_t>(nbrs.size()),
                       sg, [dc, prev_level](vid u) {
                         return dc[u].dist == prev_level;
                       });
                   bc_out_[static_cast<std::size_t>(i)] = sv;
                   bc_sigma_[static_cast<std::size_t>(v)] = sv;
                 }
               });
  reply.f64_span(bc_out_);
}

void WorkerServer::handle_bc_backward(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && bc_source_ != kNoVertex,
            "dist worker: bc-backward before bc-source");
  const auto d = static_cast<std::int64_t>(r.u64());
  r.f64_vec(scratch_f64_);
  const auto num_levels = static_cast<std::int64_t>(bc_levels_.size());
  GCT_CHECK(d >= 0 && d < num_levels,
            "dist worker: bc-backward level out of range");
  const bool deepest = d + 1 == num_levels;
  DistCoef* dc = bc_dc_.data();
  if (deepest) {
    GCT_CHECK(scratch_f64_.empty(),
              "dist worker: deepest bc-backward carries no coefficients");
  } else {
    const auto& below = bc_levels_[static_cast<std::size_t>(d + 1)];
    GCT_CHECK(scratch_f64_.size() == below.size(),
              "dist worker: bc coef span does not match the level");
    // Scatter the deeper level's coefficients into the mirror; the owned
    // sweep below reads them across block boundaries.
    for (std::size_t i = 0; i < below.size(); ++i) {
      dc[below[i]].coef = scratch_f64_[i];
    }
  }
  const auto& f = bc_levels_[static_cast<std::size_t>(d)];
  const auto slice = owned_slice(f, s.begin, s.end);
  const auto count = static_cast<std::int64_t>(slice.size());
  bc_out_.resize(slice.size());
  const double* sg = bc_sigma_.data();
  const vid source = bc_source_;
  const std::int64_t deeper = d + 1;
  stealing_for(
      wq_, 0, count, kSweepChunk, kSweepSerialBelow, opts_.threads,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<vid>(slice[static_cast<std::size_t>(i)]);
          double coef;
          if (deepest) {
            // No deeper neighbors: the dependency sum is exactly zero, so
            // the scan collapses to coef = 1/sigma (no score contribution)
            // — the same closed form as the single-process deepest level.
            coef = 1.0 / sg[static_cast<std::size_t>(v)];
          } else {
            const auto nbrs = s.neighbors(v);
            const double acc = bc_pull_coef_row(
                nbrs.data(), static_cast<std::int64_t>(nbrs.size()), dc,
                deeper);
            const double sv = sg[static_cast<std::size_t>(v)];
            const double dv = sv * acc;
            coef = (1.0 + dv) / sv;
            // Accumulated across sources in coordinator order — the same
            // per-vertex add order as fine mode's serial source loop.
            if (v != source) {
              bc_score_[static_cast<std::size_t>(v - s.begin)] += dv;
            }
          }
          dc[v].coef = coef;
          bc_out_[static_cast<std::size_t>(i)] = coef;
        }
      });
  reply.f64_span(bc_out_);
}

}  // namespace graphct::dist
