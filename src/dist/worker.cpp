#include "dist/worker.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace graphct::dist {

WorkerServer::WorkerServer(const WorkerOptions& opts) : opts_(opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GCT_CHECK(fd >= 0, "dist worker: cannot create listen socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 1) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("dist worker: cannot bind 127.0.0.1:" +
                std::to_string(opts.port) + ": " + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  GCT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
            "dist worker: getsockname failed");
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
}

WorkerServer::~WorkerServer() { stop(); }

void WorkerServer::stop() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a racing accept(); close() alone may not.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void WorkerServer::release() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void WorkerServer::serve() {
  int cfd = -1;
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;  // stopped before a coordinator arrived
    cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd >= 0) break;
    if (errno == EINTR) continue;
    return;  // listen socket closed under us (stop()) or fatal error
  }
  stop();  // one coordinator per worker; no further accepts
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  FrameConn conn(cfd);

  std::int64_t received = 0;
  Msg type;
  std::string payload;
  for (;;) {
    try {
      if (!conn.recv(type, payload)) return;  // coordinator hung up
    } catch (const std::exception&) {
      return;  // transport corrupt/dead; nothing to report it on
    }
    ++received;
    if (opts_.fail_after >= 0 && received > opts_.fail_after) {
      // Injected death: drop the connection without replying, exactly as
      // a crashed worker would.
      conn.close();
      return;
    }
    if (type == Msg::kShutdown) {
      try {
        conn.send(Msg::kAck, "");
      } catch (const std::exception&) {
      }
      return;
    }
    try {
      handle(type, payload, conn);
    } catch (const std::exception& e) {
      // Handler failure is a protocol-level error: report it in the reply
      // slot and keep serving. Only a failing send ends the loop.
      try {
        WireWriter w;
        w.str(e.what());
        conn.send(Msg::kError, w.take());
      } catch (const std::exception&) {
        return;
      }
    }
  }
}

void WorkerServer::handle(Msg type, const std::string& payload,
                          FrameConn& conn) {
  WireReader r(payload);
  WireWriter reply;
  Msg reply_type = Msg::kAck;
  switch (type) {
    case Msg::kHello: {
      const std::uint64_t version = r.u64();
      GCT_CHECK(version == 1,
                "dist worker: unsupported protocol version " +
                    std::to_string(version));
      reply.u64(1);
      reply.u64(static_cast<std::uint64_t>(::getpid()));
      reply_type = Msg::kHelloAck;
      break;
    }
    case Msg::kLoadBlock:
      handle_load(r, reply);
      reply_type = Msg::kLoadAck;
      break;
    case Msg::kBfsStart: {
      const auto& s = slots_[kSlotPrimary];
      GCT_CHECK(s.present, "dist worker: bfs-start before load-block");
      proposed_.assign(static_cast<std::size_t>(s.global_n), 0);
      break;
    }
    case Msg::kBfsStep:
      handle_bfs_step(r, reply);
      reply_type = Msg::kBfsFrontier;
      break;
    case Msg::kCcStart: {
      const auto& s = slots_[kSlotPrimary];
      GCT_CHECK(s.present, "dist worker: cc-start before load-block");
      labels_.resize(static_cast<std::size_t>(s.global_n));
      for (vid v = 0; v < s.global_n; ++v) {
        labels_[static_cast<std::size_t>(v)] = v;
      }
      break;
    }
    case Msg::kCcStep:
      handle_cc_step(r, reply);
      reply_type = Msg::kCcDelta;
      break;
    case Msg::kPrStart: {
      pr_slot_ = r.u8();
      GCT_CHECK(pr_slot_ < kNumSlots && slots_[pr_slot_].present,
                "dist worker: pr-start references an unloaded graph slot");
      break;
    }
    case Msg::kPrStep:
      handle_pr_step(r, reply);
      reply_type = Msg::kPrRanks;
      break;
    default:
      throw Error(std::string("dist worker: unexpected message ") +
                  msg_name(type));
  }
  conn.send(reply_type, reply.take());
}

void WorkerServer::handle_load(WireReader& r, WireWriter& reply) {
  const std::uint8_t slot_id = r.u8();
  GCT_CHECK(slot_id < kNumSlots, "dist worker: bad graph slot");
  Slot& s = slots_[slot_id];
  s.directed = r.u8() != 0;
  s.global_n = r.i64();
  s.begin = r.i64();
  s.end = r.i64();
  GCT_CHECK(s.begin >= 0 && s.begin <= s.end && s.end <= s.global_n,
            "dist worker: bad block range");
  r.i64_vec(s.offsets);
  r.i64_vec(s.adjacency);
  GCT_CHECK(static_cast<vid>(s.offsets.size()) == s.end - s.begin + 1,
            "dist worker: offsets length does not match block range");
  // Rebase to zero so neighbors() indexes the local adjacency slice.
  const eid base = s.offsets.empty() ? 0 : s.offsets.front();
  for (auto& o : s.offsets) o -= base;
  GCT_CHECK(s.offsets.empty() ||
                s.offsets.back() == static_cast<eid>(s.adjacency.size()),
            "dist worker: adjacency length does not match offsets");
  s.present = true;
  reply.u8(slot_id);
  reply.i64(static_cast<std::int64_t>(s.adjacency.size()));
}

void WorkerServer::handle_bfs_step(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && !proposed_.empty(),
            "dist worker: bfs-step before bfs-start");
  r.i64_vec(scratch_i64_);
  std::vector<vid> candidates;
  for (const vid u : scratch_i64_) {
    GCT_CHECK(u >= s.begin && u < s.end,
              "dist worker: bfs frontier vertex not owned by this block");
    // The frontier vertex itself is visited; never propose it again.
    proposed_[static_cast<std::size_t>(u)] = 1;
    for (const vid v : s.neighbors(u)) {
      auto& seen = proposed_[static_cast<std::size_t>(v)];
      if (!seen) {
        seen = 1;
        candidates.push_back(v);
      }
    }
  }
  reply.i64_span(candidates);
}

void WorkerServer::handle_cc_step(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[kSlotPrimary];
  GCT_CHECK(s.present && !labels_.empty(),
            "dist worker: cc-step before cc-start");
  // Apply the coordinator's merged delta first (monotone min, idempotent).
  r.i64_vec(scratch_i64_);
  std::vector<std::int64_t> delta_labels;
  r.i64_vec(delta_labels);
  GCT_CHECK(scratch_i64_.size() == delta_labels.size(),
            "dist worker: cc delta arrays disagree");
  for (std::size_t i = 0; i < scratch_i64_.size(); ++i) {
    const auto v = static_cast<std::size_t>(scratch_i64_[i]);
    GCT_CHECK(v < labels_.size(), "dist worker: cc delta vertex out of range");
    if (delta_labels[i] < labels_[v]) labels_[v] = delta_labels[i];
  }

  // Scan owned rows, absorbing labels across each arc in both directions
  // (weak components: a directed arc still merges its endpoints). Updates
  // apply locally as they are found — monotone minima converge to the same
  // fixed point in any order — and every locally lowered vertex is
  // proposed to the coordinator.
  std::vector<vid> changed;
  auto lower = [&](vid v, vid label) {
    auto& cur = labels_[static_cast<std::size_t>(v)];
    if (label < cur) {
      cur = label;
      changed.push_back(v);  // may repeat across arcs; deduped below
    }
  };
  for (vid u = s.begin; u < s.end; ++u) {
    for (const vid v : s.neighbors(u)) {
      const vid lu = labels_[static_cast<std::size_t>(u)];
      const vid lv = labels_[static_cast<std::size_t>(v)];
      if (lu < lv) {
        lower(v, lu);
      } else if (lv < lu) {
        lower(u, lv);
      }
    }
  }
  // Dedup: a vertex lowered several times reports its final label once.
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  std::vector<std::int64_t> out_labels(changed.size());
  for (std::size_t i = 0; i < changed.size(); ++i) {
    out_labels[i] = labels_[static_cast<std::size_t>(changed[i])];
  }
  reply.i64_span(changed);
  reply.i64_span(out_labels);
}

void WorkerServer::handle_pr_step(WireReader& r, WireWriter& reply) {
  const Slot& s = slots_[pr_slot_];
  GCT_CHECK(s.present, "dist worker: pr-step before pr-start");
  const double base = r.f64();
  const double damping = r.f64();
  r.f64_vec(contrib_);
  GCT_CHECK(static_cast<vid>(contrib_.size()) == s.global_n,
            "dist worker: contrib vector length mismatch");
  next_.resize(static_cast<std::size_t>(s.end - s.begin));
  // Sequential per-vertex accumulation in adjacency order: floating-point
  // addition is order-dependent, and this order is exactly the
  // single-process kernel's, which is what makes per-vertex sums match it
  // bitwise given identical inputs.
  for (vid v = s.begin; v < s.end; ++v) {
    double acc = 0.0;
    for (const vid u : s.neighbors(v)) {
      acc += contrib_[static_cast<std::size_t>(u)];
    }
    next_[static_cast<std::size_t>(v - s.begin)] = base + damping * acc;
  }
  reply.f64_span(next_);
}

}  // namespace graphct::dist
