#pragma once

/// \file wire.hpp
/// The dist substrate's wire protocol: message vocabulary, payload
/// serialization, and a blocking framed-socket connection.
///
/// Every message is one binary frame (util/framing: 24-byte header with
/// magic, version, type, payload length, and an FNV-1a-64 payload
/// checksum). Payloads are little-endian scalar/array encodings written by
/// WireWriter and read back by WireReader with bounds-checked cursors — a
/// truncated or corrupt payload throws, it never reads past the buffer.
///
/// The protocol is a strict coordinator-driven request/reply: the
/// coordinator sends one request per worker per superstep and each worker
/// answers with exactly one reply (kError counts as the reply). Workers
/// never talk to each other — all exchange is mediated by the coordinator
/// (star topology), which is what keeps failure handling tractable: any
/// I/O error on one socket fails exactly one in-flight kernel.
///
/// FrameConn tallies message/byte traffic into the process-global obs
/// registry (`gct_dist_messages_total{dir=...}` /
/// `gct_dist_bytes_total{dir=...}`) and into per-connection counters the
/// coordinator aggregates into DistStats.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/framing.hpp"

namespace graphct::dist {

/// Message types. The numeric values are wire format — append only.
enum class Msg : std::uint8_t {
  kHello = 1,      ///< coordinator -> worker: protocol handshake
  kHelloAck = 2,   ///< worker -> coordinator: version + pid
  kLoadBlock = 3,  ///< ship one graph slot's block (offsets + adjacency)
  kLoadAck = 4,    ///< block resident; echoes entry count
  kBfsStart = 5,   ///< begin a BFS (resets the proposal bitmap)
  kBfsStep = 6,    ///< owned frontier slice for this level
  kBfsFrontier = 7,  ///< deduped candidate discoveries
  kCcStart = 8,    ///< begin components (labels reset to identity)
  kCcStep = 9,     ///< label delta to apply; worker rescans owned rows
  kCcDelta = 10,   ///< proposed label minima from owned rows
  kPrStart = 11,   ///< begin PageRank (selects the pull slot)
  kPrStep = 12,    ///< base + damping + full contrib vector
  kPrRanks = 13,   ///< next-rank values for the owned range
  kAck = 14,       ///< generic success reply
  kError = 15,     ///< worker-side failure; payload = message string
  kShutdown = 16,  ///< coordinator -> worker: clean exit after kAck
  // Distributed betweenness supersteps. Forward: one expand + one sigma
  // exchange per BFS level; backward: one coefficient exchange per level,
  // deepest first (coefficient form — no atomics cross the wire).
  kBcStart = 17,       ///< begin betweenness (zeroes the owned score block)
  kBcSource = 18,      ///< per-source reset; payload = source vertex
  kBcForward = 19,     ///< sigma of the previous frontier; expand owned rows
  kBcCandidates = 20,  ///< proposed next-level discoveries
  kBcSigma = 21,       ///< the merged new frontier; pull sigma for owned slice
  kBcSigmaBlock = 22,  ///< sigma values for the owned frontier slice
  kBcBackward = 23,    ///< coefs one level deeper; sweep the owned bucket
  kBcCoefBlock = 24,   ///< coef values for the owned level bucket
  kBcScores = 25,      ///< gather request for the accumulated score block
  kBcScoreBlock = 26,  ///< owned score block (accumulated over all sources)
};

/// Human-readable message name (diagnostics and error text).
const char* msg_name(Msg m);

/// Graph slots a worker can hold: the primary partition and, for directed
/// PageRank, the partitioned reverse graph (pull needs in-edges).
inline constexpr std::uint8_t kSlotPrimary = 0;
inline constexpr std::uint8_t kSlotReverse = 1;
inline constexpr int kNumSlots = 2;

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);

  /// Length-prefixed array of i64 (vid/eid both encode through this).
  void i64_span(std::span<const std::int64_t> v);
  void f64_span(std::span<const double> v);

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);

  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload cursor. Throws graphct::Error on under-run.
class WireReader {
 public:
  explicit WireReader(std::string_view payload)
      : p_(payload.data()), end_(payload.data() + payload.size()) {}
  /// A reader borrows the payload; binding a temporary would dangle.
  explicit WireReader(std::string&&) = delete;

  std::uint8_t u8();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  void i64_vec(std::vector<std::int64_t>& out);
  void f64_vec(std::vector<double>& out);
  std::string str();

  [[nodiscard]] bool done() const { return p_ == end_; }

 private:
  void need(std::size_t bytes) const;
  const char* p_;
  const char* end_;
};

/// Per-connection traffic counters (coordinator aggregates into DistStats).
struct Traffic {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
};

/// One framed connection over a socket fd. Owns the fd. send()
/// and recv() throw graphct::Error on I/O failure, mid-frame EOF, bad
/// magic/version, or checksum mismatch; recv() returns false only on clean
/// EOF at a frame boundary.
///
/// Besides the blocking pair there is a non-blocking progress API for the
/// coordinator's overlapped exchange: queue_send() encodes a frame into a
/// per-connection outbox (double buffering — the caller's payload is free
/// to be reused immediately), flush_some()/recv_some() advance the send
/// and receive sides without ever blocking (MSG_DONTWAIT on the otherwise
/// blocking socket), and a poll() loop drives many connections at once.
/// The two APIs must not be interleaved mid-frame on the same direction;
/// kernels use one or the other per exchange round.
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(int fd) : fd_(fd) {}
  ~FrameConn() { close(); }
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;
  FrameConn(FrameConn&& o) noexcept;
  FrameConn& operator=(FrameConn&& o) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  void send(Msg type, std::string_view payload);
  [[nodiscard]] bool recv(Msg& type, std::string& payload);

  /// Encode a frame into the outbox without touching the socket (counted
  /// as sent traffic immediately; a failed flush fails the kernel anyway).
  void queue_send(Msg type, std::string_view payload);
  /// True while queued frame bytes remain unsent.
  [[nodiscard]] bool send_pending() const { return out_pos_ < outbox_.size(); }
  /// Push outbox bytes with MSG_DONTWAIT. Returns true once the outbox is
  /// drained; false means the socket would block (poll for POLLOUT).
  /// Throws graphct::Error on I/O failure.
  bool flush_some();
  /// Pull frame bytes with MSG_DONTWAIT. Returns true when a complete
  /// frame has been decoded into (type, payload); false means more bytes
  /// are needed (poll for POLLIN). Throws on EOF or I/O/decode failure —
  /// the peer must not hang up while a reply is owed.
  bool recv_some(Msg& type, std::string& payload);

  [[nodiscard]] const Traffic& traffic() const { return traffic_; }

 private:
  int fd_ = -1;
  Traffic traffic_;
  // Non-blocking send side: encoded frames pending transmission.
  std::string outbox_;
  std::size_t out_pos_ = 0;
  // Non-blocking receive side: partial header, then partial payload.
  unsigned char in_header_[framing::kFrameHeaderBytes];
  framing::FrameHeader in_h_;
  std::size_t in_got_ = 0;
  bool in_have_header_ = false;
  std::string in_payload_;
};

/// Connect to a worker listening on 127.0.0.1:port. Throws on failure.
FrameConn connect_local(int port);

}  // namespace graphct::dist
