#include "dist/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace graphct::dist {

int Partition::owner(vid v) const {
  GCT_CHECK(v >= 0 && v < num_vertices, "partition: vertex id out of range");
  // Blocks are contiguous and ascending; find the first block ending past v.
  auto it = std::upper_bound(
      blocks.begin(), blocks.end(), v,
      [](vid value, const BlockInfo& b) { return value < b.end; });
  GCT_ASSERT(it != blocks.end());
  return static_cast<int>(it - blocks.begin());
}

double Partition::edge_cut_fraction() const {
  if (total_entries == 0) return 0.0;
  eid cut = 0;
  for (const auto& b : blocks) cut += b.cut_entries;
  return static_cast<double>(cut) / static_cast<double>(total_entries);
}

double Partition::imbalance() const {
  if (total_entries == 0 || blocks.empty()) return 0.0;
  eid max_entries = 0;
  for (const auto& b : blocks) max_entries = std::max(max_entries, b.entries);
  const double mean = static_cast<double>(total_entries) /
                      static_cast<double>(blocks.size());
  return static_cast<double>(max_entries) / mean;
}

Partition partition_graph(const CsrGraph& g, int num_blocks) {
  GCT_CHECK(num_blocks >= 1, "partition: need >= 1 block");
  Partition p;
  p.num_vertices = g.num_vertices();
  p.total_entries = g.num_adjacency_entries();
  p.directed = g.directed();
  p.blocks.resize(static_cast<std::size_t>(num_blocks));

  const auto offsets = g.offsets();
  const auto adj = g.adjacency();

  // Edge-balanced split points: block i begins at the first vertex whose
  // row starts at or past i/N of the total entries. Monotone by
  // construction, so blocks never overlap; clamping keeps them ordered when
  // a single hub row spans several ideal boundaries.
  std::vector<vid> splits(static_cast<std::size_t>(num_blocks) + 1, 0);
  splits[static_cast<std::size_t>(num_blocks)] = p.num_vertices;
  for (int i = 1; i < num_blocks; ++i) {
    const eid ideal =
        static_cast<eid>((static_cast<__int128>(p.total_entries) * i) /
                         num_blocks);
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), ideal);
    vid split = static_cast<vid>(it - offsets.begin());
    split = std::clamp(split, splits[static_cast<std::size_t>(i) - 1],
                       p.num_vertices);
    splits[static_cast<std::size_t>(i)] = split;
  }

  for (int i = 0; i < num_blocks; ++i) {
    auto& b = p.blocks[static_cast<std::size_t>(i)];
    b.begin = splits[static_cast<std::size_t>(i)];
    b.end = splits[static_cast<std::size_t>(i) + 1];
    b.entries = offsets[static_cast<std::size_t>(b.end)] -
                offsets[static_cast<std::size_t>(b.begin)];
  }

  // Cut accounting: one parallel sweep per block over its adjacency slice.
#pragma omp parallel for schedule(dynamic, 1)
  for (int i = 0; i < num_blocks; ++i) {
    auto& b = p.blocks[static_cast<std::size_t>(i)];
    const eid lo = offsets[static_cast<std::size_t>(b.begin)];
    const eid hi = offsets[static_cast<std::size_t>(b.end)];
    eid cut = 0;
    for (eid e = lo; e < hi; ++e) {
      const vid t = adj[static_cast<std::size_t>(e)];
      if (t < b.begin || t >= b.end) ++cut;
    }
    b.cut_entries = cut;
  }
  return p;
}

}  // namespace graphct::dist
