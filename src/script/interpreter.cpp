#include "script/interpreter.hpp"

#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "algs/bfs.hpp"
#include "algs/degree.hpp"
#include "algs/kcore.hpp"
#include "algs/ranking.hpp"
#include "dist/coordinator.hpp"
#include "dist/local_worker_set.hpp"
#include "dist/partition.hpp"
#include "gen/rmat.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/builder.hpp"
#include "graph/transforms.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/packed_writer.hpp"
#include "twitter/mention_graph.hpp"
#include "twitter/tweet_io.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace graphct::script {

using graphct::Error;
using graphct::Toolkit;

struct Interpreter::Impl {
  std::ostream& out;
  InterpreterOptions opts;

  /// One graph-stack entry. Provider-resolved graphs carry their registry
  /// name and are shared read-only with other sessions; entries created by
  /// read/generate/save are private to this interpreter.
  struct Slot {
    std::shared_ptr<Toolkit> tk;
    std::string registry_name;  // empty => session-private

    [[nodiscard]] bool shared() const { return !registry_name.empty(); }
  };

  // Stack "memory": back() is the current graph.
  std::vector<Slot> stack;

  /// Last `threads N` request (0 = runtime default).
  int requested_threads = 0;

  /// Distributed execution context (`workers N`). The worker set and
  /// coordinator are created lazily on the first dist-dispatched kernel and
  /// rebuilt whenever the current graph changes (graph_epoch) or the
  /// substrate degrades — a failed worker never wedges the session, the
  /// next dist kernel simply gets a fresh set.
  struct DistCtx {
    int requested = 0;  ///< worker count; 0 = distribution off
    bool fork_mode = false;
    int threads = 1;  ///< OpenMP threads per worker (`threads=k`)
    std::unique_ptr<dist::LocalWorkerSet> workers;
    std::unique_ptr<dist::Coordinator> coord;
    std::int64_t bound_epoch = -1;  ///< graph_epoch the coordinator loaded
  };
  DistCtx dist_ctx;

  /// Bumped on every current-graph change (read/generate/load/use/save/
  /// restore/extract/ego) so stale dist workers are never consulted.
  std::int64_t graph_epoch = 0;

  Impl(std::ostream& o, InterpreterOptions op) : out(o), opts(std::move(op)) {}

  Toolkit& current(int line) {
    if (stack.empty()) {
      throw Error("script line " + std::to_string(line) +
                  ": no graph loaded (use 'read' or 'generate' first)");
    }
    return *stack.back().tk;
  }

  void push_private(Toolkit tk) {
    ++graph_epoch;
    stack.push_back({std::make_shared<Toolkit>(std::move(tk)), ""});
  }

  /// Tear down the worker set and coordinator (mode selection survives).
  void drop_dist_workers() {
    if (dist_ctx.coord) dist_ctx.coord->shutdown();
    dist_ctx.coord.reset();
    dist_ctx.workers.reset();
    dist_ctx.bound_epoch = -1;
  }

  /// The coordinator to dispatch kernels through, or nullptr when
  /// distribution is off. Spawns/rebuilds workers as needed.
  dist::Coordinator* ensure_dist(int line) {
    if (dist_ctx.requested <= 0) return nullptr;
    current(line);  // dist kernels need a graph like any other kernel
    const bool stale = !dist_ctx.coord || dist_ctx.coord->degraded() ||
                       dist_ctx.bound_epoch != graph_epoch;
    if (stale) {
      drop_dist_workers();
      dist::LocalWorkerSetOptions wo;
      wo.num_workers = dist_ctx.requested;
      wo.fork_mode = dist_ctx.fork_mode;
      wo.threads = dist_ctx.threads;
      dist_ctx.workers = std::make_unique<dist::LocalWorkerSet>(wo);
      dist_ctx.coord = std::make_unique<dist::Coordinator>();
      dist_ctx.coord->connect(dist_ctx.workers->ports());
      dist_ctx.bound_epoch = graph_epoch;
    }
    return dist_ctx.coord.get();
  }

  /// Replace the current graph with `g` — the script's `extract`/`ego`
  /// surgery. A private, exclusively-held toolkit is mutated through
  /// Toolkit::replace_graph(), the single invalidation path that drops
  /// every cached result; a provider-shared (or otherwise aliased) toolkit
  /// is never touched — the slot is rebound to a fresh private Toolkit so
  /// other sessions keep their resident graph and caches.
  void replace_current_graph(CsrGraph g, int line) {
    GCT_ASSERT(!stack.empty());
    (void)line;
    ++graph_epoch;
    Slot& slot = stack.back();
    if (!slot.shared() && slot.tk.use_count() == 1) {
      slot.tk->replace_graph(std::move(g));
      return;
    }
    ToolkitOptions topts = opts.toolkit;
    topts.estimate_diameter_on_load = false;  // computed lazily on demand
    slot = Slot{std::make_shared<Toolkit>(std::move(g), topts), ""};
  }
};

namespace {

std::int64_t parse_i64(const std::string& s, const Command& cmd) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(s, &used);
    GCT_CHECK(used == s.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw Error("script line " + std::to_string(cmd.line) +
                ": expected an integer, got '" + s + "'");
  }
}

double parse_f64(const std::string& s, const Command& cmd) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw Error("script line " + std::to_string(cmd.line) +
                ": expected a number, got '" + s + "'");
  }
}

void require_arity(const Command& cmd, std::size_t min_tokens,
                   std::size_t max_tokens) {
  if (cmd.tokens.size() < min_tokens || cmd.tokens.size() > max_tokens) {
    throw Error("script line " + std::to_string(cmd.line) + ": command '" +
                cmd.tokens.front() + "' has wrong number of arguments");
  }
}

template <typename T>
void write_per_vertex(const std::string& path, const std::vector<T>& values) {
  std::ofstream f(path);
  GCT_CHECK(f.good(), "cannot open output file: " + path);
  for (std::size_t v = 0; v < values.size(); ++v) {
    f << v << ' ' << values[v] << '\n';
  }
  GCT_CHECK(f.good(), "write failed: " + path);
}

}  // namespace

Interpreter::Interpreter(std::ostream& out, InterpreterOptions opts)
    : impl_(std::make_unique<Impl>(out, std::move(opts))) {}

Interpreter::~Interpreter() = default;

std::size_t Interpreter::stack_depth() const { return impl_->stack.size(); }

Toolkit& Interpreter::current() { return impl_->current(0); }

Toolkit* Interpreter::current_or_null() {
  return impl_->stack.empty() ? nullptr : impl_->stack.back().tk.get();
}

std::string Interpreter::current_graph_key() const {
  if (impl_->stack.empty() || !impl_->stack.back().shared()) return "";
  return "graph:" + impl_->stack.back().registry_name;
}

int Interpreter::requested_threads() const { return impl_->requested_threads; }

void Interpreter::run(std::string_view script_text) {
  const std::vector<Command> cmds = parse_script(script_text);

  // Script-level control flow: `repeat <n> ... end`, nestable. The original
  // GraphCT had "no loop constructs or feedback mechanisms"; this is the
  // future-work extension, kept out of execute() so single commands stay
  // loop-free.
  struct Loop {
    std::size_t body_start;
    std::int64_t remaining;
  };
  std::vector<Loop> loops;

  auto matching_end = [&](std::size_t open) {
    std::int64_t depth = 1;
    for (std::size_t j = open + 1; j < cmds.size(); ++j) {
      if (cmds[j].tokens[0] == "repeat") ++depth;
      if (cmds[j].tokens[0] == "end" && --depth == 0) return j;
    }
    throw Error("script line " + std::to_string(cmds[open].line) +
                ": 'repeat' without matching 'end'");
  };

  std::size_t i = 0;
  while (i < cmds.size()) {
    const Command& cmd = cmds[i];
    if (cmd.tokens[0] == "repeat") {
      GCT_CHECK(cmd.tokens.size() == 2,
                "script line " + std::to_string(cmd.line) +
                    ": 'repeat' takes exactly one count");
      const std::int64_t count = parse_i64(cmd.tokens[1], cmd);
      GCT_CHECK(count >= 0, "script line " + std::to_string(cmd.line) +
                                ": repeat count must be >= 0");
      if (count == 0) {
        i = matching_end(i) + 1;  // skip the body entirely
      } else {
        matching_end(i);  // validate pairing up front
        loops.push_back({i + 1, count});
        ++i;
      }
      continue;
    }
    if (cmd.tokens[0] == "end") {
      GCT_CHECK(!loops.empty(), "script line " + std::to_string(cmd.line) +
                                    ": 'end' without 'repeat'");
      if (--loops.back().remaining > 0) {
        i = loops.back().body_start;
      } else {
        loops.pop_back();
        ++i;
      }
      continue;
    }
    execute(cmd);
    ++i;
  }
  GCT_CHECK(loops.empty(), "script: 'repeat' without matching 'end'");
}

void Interpreter::run_file(const std::string& path) {
  std::ifstream in(path);
  GCT_CHECK(in.good(), "cannot open script file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  run(ss.str());
}

void Interpreter::execute(const Command& cmd) {
  if (cmd.tokens.empty()) return;
  auto& im = *impl_;
  std::ostream& out = im.out;
  const std::string& verb = cmd.tokens[0];
  Timer timer;

  if (verb == "read") {
    require_arity(cmd, 3, 3);
    const std::string& fmt = cmd.tokens[1];
    const std::string& path = cmd.tokens[2];
    if (fmt == "dimacs") {
      im.stack.clear();
      im.push_private(Toolkit::load_dimacs(path, im.opts.toolkit));
    } else if (fmt == "binary") {
      im.stack.clear();
      im.push_private(Toolkit::load_binary(path, im.opts.toolkit));
    } else if (fmt == "edgelist") {
      graphct::EdgeList el = graphct::read_edge_list(path);
      im.stack.clear();
      im.push_private(Toolkit(graphct::build_csr(el), im.opts.toolkit));
    } else if (fmt == "packed") {
      // Open a block-compressed packed file (see `pack`) as a session-
      // private store-backed graph; adjacency stays on disk and decodes
      // per block through the mmap store.
      im.stack.clear();
      im.push_private(Toolkit::load_packed(path, im.opts.toolkit));
    } else if (fmt == "tweets") {
      // Build the undirected user-to-user mention graph from a TSV tweet
      // stream — the §III-B ingest, scriptable.
      const auto tweets = graphct::twitter::read_tweets(path);
      graphct::twitter::MentionGraphBuilder builder;
      for (const auto& t : tweets) builder.add(t);
      const auto mg = std::move(builder).build();
      im.stack.clear();
      im.push_private(Toolkit(mg.undirected(), im.opts.toolkit));
      out << "mention graph: " << mg.num_users << " users, "
          << mg.unique_interactions << " unique interactions, "
          << mg.tweets_with_responses << " tweets with responses\n";
    } else {
      throw Error("script line " + std::to_string(cmd.line) +
                  ": unknown read format '" + fmt + "'");
    }
    const auto g = im.stack.back().tk->view();
    out << "read " << fmt << " " << path << ": " << g.num_vertices()
        << " vertices, " << g.num_edges() << " edges\n";
  } else if (verb == "generate") {
    require_arity(cmd, 4, 5);
    GCT_CHECK(cmd.tokens[1] == "rmat",
              "script line " + std::to_string(cmd.line) +
                  ": only 'generate rmat' is supported");
    graphct::RmatOptions r;
    r.scale = parse_i64(cmd.tokens[2], cmd);
    r.edge_factor = parse_i64(cmd.tokens[3], cmd);
    if (cmd.tokens.size() > 4) {
      r.seed = static_cast<std::uint64_t>(parse_i64(cmd.tokens[4], cmd));
    }
    im.stack.clear();
    im.push_private(Toolkit(graphct::rmat_graph(r), im.opts.toolkit));
    const auto& g = im.stack.back().tk->graph();
    out << "generated rmat scale " << r.scale << ": " << g.num_vertices()
        << " vertices, " << g.num_edges() << " edges\n";
  } else if (verb == "load") {
    // load graph <name> <path>: load once into the shared registry and make
    // it the current graph; a taken name resolves to the resident graph.
    // load packed <name> <path>: same, but opening a packed file as an
    // mmap-backed store (the graph stays on disk).
    require_arity(cmd, 4, 4);
    const std::string& kind = cmd.tokens[1];
    GCT_CHECK(kind == "graph" || kind == "packed",
              "script line " + std::to_string(cmd.line) +
                  ": expected 'load graph <name> <path>' or "
                  "'load packed <name> <path>'");
    GCT_CHECK(im.opts.provider != nullptr,
              "script line " + std::to_string(cmd.line) + ": 'load " + kind +
                  "' needs a graph registry (server mode)");
    const std::string& name = cmd.tokens[2];
    auto tk = kind == "packed"
                  ? im.opts.provider->load_packed_graph(name, cmd.tokens[3])
                  : im.opts.provider->load_graph(name, cmd.tokens[3]);
    im.stack.clear();
    ++im.graph_epoch;
    im.stack.push_back({tk, name});
    const auto g = tk->view();
    out << "loaded " << (kind == "packed" ? "packed graph '" : "graph '")
        << name << "': " << g.num_vertices() << " vertices, " << g.num_edges()
        << " edges\n";
  } else if (verb == "use") {
    // use graph <name>: switch to a registry-resident graph (shared
    // read-only with every other session using it).
    require_arity(cmd, 3, 3);
    GCT_CHECK(cmd.tokens[1] == "graph",
              "script line " + std::to_string(cmd.line) +
                  ": expected 'use graph <name>'");
    GCT_CHECK(im.opts.provider != nullptr,
              "script line " + std::to_string(cmd.line) +
                  ": 'use graph' needs a graph registry (server mode)");
    const std::string& name = cmd.tokens[2];
    auto tk = im.opts.provider->get_graph(name);
    if (!tk) {
      throw Error("script line " + std::to_string(cmd.line) +
                  ": no graph named '" + name + "' (see 'load graph')");
    }
    im.stack.clear();
    ++im.graph_epoch;
    im.stack.push_back({tk, name});
    const auto g = tk->view();
    out << "using graph '" << name << "': " << g.num_vertices()
        << " vertices, " << g.num_edges() << " edges\n";
  } else if (verb == "threads") {
    require_arity(cmd, 2, 2);
    const std::int64_t n = parse_i64(cmd.tokens[1], cmd);
    GCT_CHECK(n >= 0, "script line " + std::to_string(cmd.line) +
                          ": thread count must be >= 0 (0 = default)");
    im.requested_threads = static_cast<int>(n);
    graphct::set_num_threads(im.requested_threads);
    // Echo what the runtime will actually deliver, not the request — the
    // two differ when the request exceeds the machine or a thread limit.
    const int effective = graphct::effective_num_threads();
    out << "threads set to "
        << (n == 0 ? "default" : std::to_string(n)) << " (effective "
        << effective << ")\n";
  } else if (verb == "workers") {
    // workers <n> [fork|threads] [threads=k] | workers off: route
    // components/pagerank/bfs/bc through n loopback worker processes
    // (threads by default — cheap and sanitizer-friendly; fork gives
    // genuine process isolation). threads=k gives every worker its own
    // k-thread OpenMP team for block-local sweeps (default 1 — serial, so
    // a one-core host is never oversubscribed). The workers spawn lazily
    // on the first distributed kernel.
    require_arity(cmd, 2, 4);
    const std::string& arg = cmd.tokens[1];
    if (arg == "off") {
      require_arity(cmd, 2, 2);
      im.drop_dist_workers();
      im.dist_ctx.requested = 0;
      out << "workers off\n";
    } else {
      const std::int64_t n = parse_i64(arg, cmd);
      GCT_CHECK(n >= 0 && n <= 256,
                "script line " + std::to_string(cmd.line) +
                    ": worker count must be in [0, 256] (0 = off)");
      bool fork_mode = false;
      int threads = 1;
      for (std::size_t t = 2; t < cmd.tokens.size(); ++t) {
        const std::string& mode = cmd.tokens[t];
        if (mode == "fork") {
          fork_mode = true;
        } else if (mode.rfind("threads=", 0) == 0) {
          const std::int64_t k =
              parse_i64(mode.substr(std::string("threads=").size()), cmd);
          GCT_CHECK(k >= 1 && k <= 256,
                    "script line " + std::to_string(cmd.line) +
                        ": worker threads must be in [1, 256]");
          threads = static_cast<int>(k);
        } else if (mode != "threads") {
          throw Error("script line " + std::to_string(cmd.line) +
                      ": worker mode must be 'fork', 'threads', or "
                      "'threads=<k>' (got '" + mode + "')");
        }
      }
      if (n != im.dist_ctx.requested ||
          fork_mode != im.dist_ctx.fork_mode ||
          threads != im.dist_ctx.threads) {
        im.drop_dist_workers();
      }
      im.dist_ctx.requested = static_cast<int>(n);
      im.dist_ctx.fork_mode = fork_mode;
      im.dist_ctx.threads = threads;
      if (n == 0) {
        out << "workers off\n";
      } else {
        out << "workers set to " << n << " ("
            << (fork_mode ? "fork" : "threads") << " mode, "
            << threads << (threads == 1 ? " thread" : " threads")
            << " each)\n";
      }
    }
  } else if (verb == "partition") {
    // partition info <N>: show the 1-D edge-balanced blocks `workers N`
    // would use — per-block vertex/entry counts, edge-cut fraction, and
    // imbalance — without spawning anything.
    require_arity(cmd, 3, 3);
    GCT_CHECK(cmd.tokens[1] == "info",
              "script line " + std::to_string(cmd.line) +
                  ": expected 'partition info <num blocks>'");
    const std::int64_t n = parse_i64(cmd.tokens[2], cmd);
    GCT_CHECK(n >= 1 && n <= 4096,
              "script line " + std::to_string(cmd.line) +
                  ": block count must be in [1, 4096]");
    Toolkit& tk = im.current(cmd.line);
    graphct::CsrGraph decoded;
    const dist::Partition p =
        dist::partition_graph(tk.view().as_csr_or(decoded),
                              static_cast<int>(n));
    out << "partition into " << p.num_blocks() << " blocks ("
        << p.num_vertices << " vertices, " << p.total_entries
        << " adjacency entries)\n";
    for (int b = 0; b < p.num_blocks(); ++b) {
      const auto& blk = p.blocks[static_cast<std::size_t>(b)];
      out << "  block " << b << ": vertices [" << blk.begin << ", "
          << blk.end << ") entries " << blk.entries << " cut "
          << blk.cut_entries << "\n";
    }
    out << "edge-cut fraction " << p.edge_cut_fraction() << ", imbalance "
        << p.imbalance() << "\n";
  } else if (verb == "profile") {
    // profile on|off: toggle per-kernel phase profiling. While on, every
    // command that runs kernels prints a phase-breakdown table per kernel.
    require_arity(cmd, 2, 2);
    const std::string& arg = cmd.tokens[1];
    if (arg == "on") {
      obs::set_profiling_enabled(true);
    } else if (arg == "off") {
      obs::set_profiling_enabled(false);
    } else {
      throw Error("script line " + std::to_string(cmd.line) +
                  ": expected 'profile on' or 'profile off'");
    }
    out << "profiling " << arg << "\n";
  } else if (verb == "stats") {
    // stats [prom|json]: dump the process-wide metrics registry (kernel
    // runs and latencies, cache hits/misses, job queue, thread gauges).
    require_arity(cmd, 1, 2);
    const auto snap = obs::registry().snapshot();
    if (cmd.tokens.size() > 1 && cmd.tokens[1] == "json") {
      out << snap.to_json() << "\n";
    } else if (cmd.tokens.size() == 1 || cmd.tokens[1] == "prom") {
      out << snap.to_prometheus();
    } else {
      throw Error("script line " + std::to_string(cmd.line) +
                  ": expected 'stats', 'stats prom', or 'stats json'");
    }
  } else if (verb == "print") {
    require_arity(cmd, 2, 3);
    Toolkit& tk = im.current(cmd.line);
    const std::string& what = cmd.tokens[1];
    if (what == "diameter") {
      if (cmd.tokens.size() > 2) {
        // Argument = percentage of vertices to sample (paper example:
        // "print diameter 10" estimates from 10% of the vertices).
        const double pct = parse_f64(cmd.tokens[2], cmd);
        GCT_CHECK(pct > 0.0 && pct <= 100.0,
                  "script line " + std::to_string(cmd.line) +
                      ": diameter sample percentage must be in (0,100]");
        const auto n = tk.view().num_vertices();
        const auto samples = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(static_cast<double>(n) * pct / 100.0));
        const auto& d = tk.estimate_diameter(samples, 4);
        out << "diameter estimate: " << d.estimate << " (longest BFS distance "
            << d.longest_distance << ", " << d.samples_used << " samples)\n";
      } else {
        const auto& d = tk.diameter();
        out << "diameter estimate: " << d.estimate << " (longest BFS distance "
            << d.longest_distance << ", " << d.samples_used << " samples)\n";
      }
    } else if (what == "degrees") {
      const auto& s = tk.degree_stats();
      out << "degrees: n=" << s.count << " mean=" << s.mean
          << " variance=" << s.variance << " max=" << s.max << "\n";
      if (cmd.has_redirect()) {
        write_per_vertex(cmd.redirect, graphct::degrees(tk.view()));
      }
    } else if (what == "components") {
      if (dist::Coordinator* coord = im.ensure_dist(cmd.line)) {
        const auto& labels = tk.components_dist(*coord);
        const auto stats = graphct::component_stats(
            std::span<const graphct::vid>(labels.data(), labels.size()));
        out << "components: " << stats.num_components << " (largest "
            << stats.largest_size() << ") [workers="
            << coord->num_workers() << "]\n";
        if (cmd.has_redirect()) {
          write_per_vertex(cmd.redirect, labels);
        }
      } else {
        const auto& stats = tk.components_stats();
        out << "components: " << stats.num_components << " (largest "
            << stats.largest_size() << ")\n";
        if (cmd.has_redirect()) {
          write_per_vertex(cmd.redirect, tk.components());
        }
      }
    } else if (what == "clustering") {
      const auto& c = tk.clustering();
      out << "clustering: triangles=" << c.total_triangles
          << " global=" << c.global_clustering
          << " mean_local=" << c.mean_local_clustering << "\n";
      if (cmd.has_redirect()) {
        write_per_vertex(cmd.redirect, c.coefficient);
      }
    } else if (what == "kcores") {
      const auto& cores = tk.core_numbers();
      out << "kcores: degeneracy=" << graphct::degeneracy(cores) << "\n";
      if (cmd.has_redirect()) {
        write_per_vertex(cmd.redirect, cores);
      }
    } else if (what == "graph") {
      const auto g = tk.view();
      out << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
          << " edges, " << g.num_self_loops() << " self-loops, "
          << (g.directed() ? "directed" : "undirected");
      if (tk.store_backed()) {
        out << ", packed store " << tk.store()->path();
      }
      out << "\n";
    } else {
      throw Error("script line " + std::to_string(cmd.line) +
                  ": unknown print target '" + what + "'");
    }
  } else if (verb == "save") {
    require_arity(cmd, 2, 2);
    GCT_CHECK(cmd.tokens[1] == "graph",
              "script line " + std::to_string(cmd.line) +
                  ": expected 'save graph'");
    Toolkit& tk = im.current(cmd.line);
    // Duplicate the current graph on the stack; subsequent extracts replace
    // the copy and 'restore graph' pops back to the original.
    graphct::ToolkitOptions topts = im.opts.toolkit;
    topts.estimate_diameter_on_load = false;  // identical graph; skip rework
    if (tk.store_backed()) {
      // The store is immutable on disk; the duplicate shares it and only
      // the result caches are per-Toolkit.
      im.push_private(Toolkit(tk.shared_store(), topts));
    } else {
      im.push_private(Toolkit(tk.graph(), topts));
    }
    out << "graph saved (stack depth " << im.stack.size() << ")\n";
  } else if (verb == "restore") {
    require_arity(cmd, 2, 2);
    GCT_CHECK(cmd.tokens[1] == "graph",
              "script line " + std::to_string(cmd.line) +
                  ": expected 'restore graph'");
    GCT_CHECK(im.stack.size() >= 2, "script line " + std::to_string(cmd.line) +
                                        ": nothing to restore");
    // Popping destroys the (possibly extracted-over) top-of-stack toolkit
    // and its caches wholesale; the restored toolkit's caches were computed
    // for exactly the graph it still holds, so nothing stale survives.
    im.stack.pop_back();
    ++im.graph_epoch;
    out << "graph restored (stack depth " << im.stack.size() << ")\n";
  } else if (verb == "extract") {
    require_arity(cmd, 3, 3);
    Toolkit& tk = im.current(cmd.line);
    const std::string& what = cmd.tokens[1];
    if (what == "component") {
      const std::int64_t idx = parse_i64(cmd.tokens[2], cmd);
      GCT_CHECK(idx >= 1, "script line " + std::to_string(cmd.line) +
                              ": component index is 1-based");
      graphct::CsrGraph sub = tk.component_graph(idx - 1);
      if (cmd.has_redirect()) {
        graphct::write_binary(sub, cmd.redirect);
      }
      out << "extracted component " << idx << ": " << sub.num_vertices()
          << " vertices, " << sub.num_edges() << " edges\n";
      im.replace_current_graph(std::move(sub), cmd.line);
    } else if (what == "kcore") {
      const std::int64_t k = parse_i64(cmd.tokens[2], cmd);
      graphct::CsrGraph decoded;
      graphct::Subgraph sub =
          graphct::kcore_subgraph(tk.view().as_csr_or(decoded), k);
      if (cmd.has_redirect()) {
        graphct::write_binary(sub.graph, cmd.redirect);
      }
      out << "extracted " << k << "-core: " << sub.graph.num_vertices()
          << " vertices, " << sub.graph.num_edges() << " edges\n";
      im.replace_current_graph(std::move(sub.graph), cmd.line);
    } else {
      throw Error("script line " + std::to_string(cmd.line) +
                  ": unknown extract target '" + what + "'");
    }
  } else if (verb == "bc") {
    // bc <num sources> [fine|coarse|auto] [budget MiB]
    // Plain Brandes betweenness (kcentrality's k=0 fast path) with the
    // parallelism mode and kAuto score-memory budget exposed.
    require_arity(cmd, 2, 4);
    Toolkit& tk = im.current(cmd.line);
    graphct::BetweennessOptions bo;
    bo.num_sources = parse_i64(cmd.tokens[1], cmd);
    bo.parallelism = graphct::BcParallelism::kAuto;
    if (cmd.tokens.size() >= 3) {
      const std::string& mode = cmd.tokens[2];
      if (mode == "fine") {
        bo.parallelism = graphct::BcParallelism::kFine;
      } else if (mode == "coarse") {
        bo.parallelism = graphct::BcParallelism::kCoarse;
      } else if (mode == "auto") {
        bo.parallelism = graphct::BcParallelism::kAuto;
      } else {
        throw Error("script line " + std::to_string(cmd.line) +
                    ": bc mode must be fine, coarse, or auto (got '" + mode +
                    "')");
      }
    }
    if (cmd.tokens.size() >= 4) {
      const std::int64_t mib = parse_i64(cmd.tokens[3], cmd);
      if (mib <= 0) {
        throw Error("script line " + std::to_string(cmd.line) +
                    ": bc budget must be a positive MiB count");
      }
      bo.score_memory_budget_bytes = static_cast<std::uint64_t>(mib) << 20;
    }
    // `workers N` routes betweenness through the dist substrate (scores
    // are defined bit-identical to the single-process fine mode).
    dist::Coordinator* coord = im.ensure_dist(cmd.line);
    const auto& res =
        coord ? tk.betweenness_dist(*coord, bo) : tk.betweenness(bo);
    out << "bc sources=" << res.sources_used << " mode="
        << (res.parallelism_used == graphct::BcParallelism::kFine ? "fine"
                                                                  : "coarse")
        << " batches=" << res.batches << ": done in "
        << graphct::format_duration(res.seconds);
    if (coord) out << " [workers=" << coord->num_workers() << "]";
    out << "\n";
    if (cmd.has_redirect()) {
      write_per_vertex(cmd.redirect, res.score);
    } else {
      auto top = graphct::top_k(
          std::span<const double>(res.score.data(), res.score.size()), 10);
      for (auto v : top) {
        out << "  vertex " << v << "  score "
            << res.score[static_cast<std::size_t>(v)] << "\n";
      }
    }
  } else if (verb == "kcentrality") {
    require_arity(cmd, 3, 3);
    Toolkit& tk = im.current(cmd.line);
    graphct::KBetweennessOptions ko;
    ko.k = parse_i64(cmd.tokens[1], cmd);
    ko.num_sources = parse_i64(cmd.tokens[2], cmd);
    const auto& res = tk.k_betweenness(ko);
    out << "kcentrality k=" << ko.k << " sources=" << res.sources_used
        << ": done in " << graphct::format_duration(res.seconds) << "\n";
    if (cmd.has_redirect()) {
      write_per_vertex(cmd.redirect, res.score);
    } else {
      // Screen summary: the ten most central vertices.
      auto top = graphct::top_k(
          std::span<const double>(res.score.data(), res.score.size()), 10);
      for (auto v : top) {
        out << "  vertex " << v << "  score "
            << res.score[static_cast<std::size_t>(v)] << "\n";
      }
    }
  } else if (verb == "pagerank") {
    require_arity(cmd, 1, 1);
    Toolkit& tk = im.current(cmd.line);
    dist::Coordinator* coord = im.ensure_dist(cmd.line);
    const auto& res = coord ? tk.pagerank_dist(*coord) : tk.pagerank();
    out << "pagerank: " << res.iterations << " iterations, residual "
        << res.residual << (res.converged ? "" : " (not converged)");
    if (coord) out << " [workers=" << coord->num_workers() << "]";
    out << "\n";
    if (cmd.has_redirect()) {
      write_per_vertex(cmd.redirect, res.score);
    } else {
      auto top = graphct::top_k(
          std::span<const double>(res.score.data(), res.score.size()), 10);
      for (auto v : top) {
        out << "  vertex " << v << "  score "
            << res.score[static_cast<std::size_t>(v)] << "\n";
      }
    }
  } else if (verb == "closeness") {
    require_arity(cmd, 2, 2);
    Toolkit& tk = im.current(cmd.line);
    graphct::ClosenessOptions co;
    co.num_sources = parse_i64(cmd.tokens[1], cmd);
    const auto& res = tk.closeness(co);
    out << "closeness: " << res.sources_used << " sources in "
        << graphct::format_duration(res.seconds) << "\n";
    if (cmd.has_redirect()) {
      write_per_vertex(cmd.redirect, res.score);
    } else {
      auto top = graphct::top_k(
          std::span<const double>(res.score.data(), res.score.size()), 10);
      for (auto v : top) {
        out << "  vertex " << v << "  score "
            << res.score[static_cast<std::size_t>(v)] << "\n";
      }
    }
  } else if (verb == "communities") {
    require_arity(cmd, 1, 1);
    Toolkit& tk = im.current(cmd.line);
    const auto& c = tk.communities();
    out << "communities: " << c.num_communities << " (largest "
        << (c.sizes.empty() ? 0 : c.sizes.front().second) << "), modularity "
        << tk.community_modularity() << "\n";
    if (cmd.has_redirect()) {
      write_per_vertex(cmd.redirect, c.labels);
    }
  } else if (verb == "bfs") {
    require_arity(cmd, 3, 3);
    Toolkit& tk = im.current(cmd.line);
    graphct::BfsOptions bo;
    const graphct::vid src = parse_i64(cmd.tokens[1], cmd);
    bo.max_depth = parse_i64(cmd.tokens[2], cmd);
    if (dist::Coordinator* coord = im.ensure_dist(cmd.line)) {
      const auto& d = tk.bfs_distances_dist(*coord, src, bo.max_depth);
      std::int64_t reached = 0;
      for (const auto dv : d) reached += dv != graphct::kNoVertex ? 1 : 0;
      out << "bfs from " << src << " depth " << bo.max_depth << ": reached "
          << reached << " vertices [workers=" << coord->num_workers()
          << "]\n";
      if (cmd.has_redirect()) {
        write_per_vertex(cmd.redirect, d);
      }
    } else {
      const auto r = graphct::bfs(tk.view(), src, bo);
      out << "bfs from " << src << " depth " << bo.max_depth << ": reached "
          << r.num_reached() << " vertices\n";
      if (cmd.has_redirect()) {
        write_per_vertex(cmd.redirect, r.distance);
      }
    }
  } else if (verb == "ego") {
    // Analyst drill-down: replace the current graph with a vertex's
    // neighborhood (use after 'kcentrality' surfaces an actor of interest).
    require_arity(cmd, 3, 3);
    Toolkit& tk = im.current(cmd.line);
    const graphct::vid center = parse_i64(cmd.tokens[1], cmd);
    const graphct::vid radius = parse_i64(cmd.tokens[2], cmd);
    graphct::CsrGraph decoded;
    graphct::Subgraph sub =
        graphct::ego_network(tk.view().as_csr_or(decoded), center, radius);
    if (cmd.has_redirect()) {
      graphct::write_binary(sub.graph, cmd.redirect);
    }
    out << "ego network of " << center << " radius " << radius << ": "
        << sub.graph.num_vertices() << " vertices, "
        << sub.graph.num_edges() << " edges\n";
    im.replace_current_graph(std::move(sub.graph), cmd.line);
  } else if (verb == "write") {
    require_arity(cmd, 3, 3);
    Toolkit& tk = im.current(cmd.line);
    const std::string& fmt = cmd.tokens[1];
    // Writers need a DRAM CSR; a store-backed graph decodes once here, so
    // `read packed` + `write binary` is the unpack path.
    graphct::CsrGraph decoded;
    const graphct::CsrGraph* g = &tk.view().as_csr_or(decoded);
    if (fmt == "binary") {
      graphct::write_binary(*g, cmd.tokens[2]);
    } else if (fmt == "dimacs") {
      graphct::write_dimacs(*g, cmd.tokens[2]);
    } else {
      throw Error("script line " + std::to_string(cmd.line) +
                  ": unknown write format '" + fmt + "'");
    }
    out << "wrote " << fmt << " " << cmd.tokens[2] << "\n";
  } else if (verb == "pack") {
    // pack <path> [none|varint] [block-KiB]: write the current graph in the
    // block-compressed packed format (read back with 'read packed').
    require_arity(cmd, 2, 4);
    Toolkit& tk = im.current(cmd.line);
    storage::PackOptions po;
    if (cmd.tokens.size() >= 3) {
      const std::string& codec = cmd.tokens[2];
      if (codec == "none") {
        po.codec = storage::Codec::kNone;
      } else if (codec == "varint") {
        po.codec = storage::Codec::kVarint;
      } else {
        throw Error("script line " + std::to_string(cmd.line) +
                    ": pack codec must be 'none' or 'varint' (got '" + codec +
                    "')");
      }
    }
    if (cmd.tokens.size() >= 4) {
      const std::int64_t kib = parse_i64(cmd.tokens[3], cmd);
      GCT_CHECK(kib > 0, "script line " + std::to_string(cmd.line) +
                             ": pack block size must be a positive KiB count");
      po.block_target_bytes = static_cast<std::uint64_t>(kib) << 10;
    }
    graphct::CsrGraph decoded;
    const auto res =
        storage::pack_graph(tk.view().as_csr_or(decoded), cmd.tokens[1], po);
    out << "packed " << cmd.tokens[1] << ": " << res.num_blocks << " blocks, "
        << res.payload_bytes << " payload bytes, ratio "
        << res.compression_ratio << "x\n";
  } else if (verb == "echo") {
    for (std::size_t i = 1; i < cmd.tokens.size(); ++i) {
      if (i > 1) out << ' ';
      out << cmd.tokens[i];
    }
    out << "\n";
  } else {
    throw Error("script line " + std::to_string(cmd.line) +
                ": unknown command '" + verb + "'");
  }

  // Profiles collected on this thread by the command's kernels: print them
  // while profiling is on, discard otherwise (a toggle mid-script must not
  // leak earlier profiles into a later command's output).
  if (obs::profiling_enabled()) {
    for (const auto& p : obs::drain_profiles()) {
      out << obs::format_profile(p);
    }
  } else {
    obs::clear_profiles();
  }

  if (im.opts.timings) {
    out << "[" << graphct::format_duration(timer.seconds()) << "]\n";
  }
}

}  // namespace graphct::script
