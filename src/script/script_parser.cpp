#include "script/script_parser.hpp"

#include <cctype>

#include "util/error.hpp"

namespace graphct::script {

Command parse_line(std::string_view line, int lineno) {
  Command cmd;
  cmd.line = lineno;

  // Strip comments (a '#' starts a comment anywhere outside a token that
  // began earlier — the language has no quoting, so any '#' ends the line).
  if (auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }

  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    if (j > i) words.emplace_back(line.substr(i, j - i));
    i = j;
  }
  if (words.empty()) return cmd;

  // Split on `=>`.
  bool saw_arrow = false;
  for (std::size_t w = 0; w < words.size(); ++w) {
    if (words[w] == "=>") {
      GCT_CHECK(!saw_arrow, "script line " + std::to_string(lineno) +
                                ": multiple '=>' redirects");
      GCT_CHECK(w + 1 < words.size(), "script line " + std::to_string(lineno) +
                                          ": '=>' needs a file name");
      GCT_CHECK(w + 2 >= words.size(),
                "script line " + std::to_string(lineno) +
                    ": unexpected tokens after redirect target");
      cmd.redirect = words[w + 1];
      saw_arrow = true;
      break;
    }
    cmd.tokens.push_back(words[w]);
  }
  GCT_CHECK(!cmd.tokens.empty() || !saw_arrow,
            "script line " + std::to_string(lineno) +
                ": redirect without a command");
  return cmd;
}

std::vector<Command> parse_script(std::string_view text) {
  std::vector<Command> out;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    ++lineno;
    Command c = parse_line(text.substr(pos, eol - pos), lineno);
    if (!c.tokens.empty()) out.push_back(std::move(c));
    if (eol == text.size()) break;
    pos = eol + 1;
  }
  return out;
}

}  // namespace graphct::script
