#pragma once

/// \file interpreter.hpp
/// Interpreter for the GraphCT scripting language (paper §IV-B).
///
/// Execution is sequential, one kernel per line. A stack-based "memory"
/// (like a basic calculator's) holds graphs: `save graph` pushes the
/// current graph, `restore graph` pops back to it, and `extract ...`
/// replaces the current graph with a subgraph. Kernels producing per-vertex
/// data write to the `=>` redirect file; everything else prints to the
/// interpreter's output stream. There are deliberately no loop constructs
/// ("the current implementation contains no loop constructs or feedback
/// mechanisms"); an external process can monitor output and drive further
/// scripts.
///
/// Command reference (beyond the paper's, marked +):
///   read dimacs <path> | read binary <path> | read edgelist <path>
///   + generate rmat <scale> <edge factor> [seed]
///   print diameter [<percent of vertices>]
///   print degrees            [=> per-vertex degrees]
///   print components         [=> per-vertex component labels]
///   + print clustering       [=> per-vertex coefficients]
///   + print kcores           [=> per-vertex coreness]
///   + print graph            (vertex/edge counts)
///   save graph
///   restore graph
///   extract component <i>    [=> binary graph file]   (1-based, by size)
///   + extract kcore <k>      [=> binary graph file]
///   kcentrality <k> <num sources>  [=> per-vertex scores]
///   + bc <num sources> [fine|coarse|auto] [budget MiB]  [=> per-vertex
///     scores]  (Brandes betweenness; auto is the default and bounds
///     score-buffer memory to the budget, 1024 MiB unless given)
///   + pagerank               [=> per-vertex scores]
///   + closeness <num sources> [=> per-vertex scores]
///   + communities             [=> per-vertex labels]
///   + bfs <source> <depth>
///   + write binary <path> | write dimacs <path>
///   + echo <words...>
///   + threads <n>           (pin OpenMP parallelism; 0 = default; echoes
///     the count the runtime actually delivers)
///   + profile on|off        (per-kernel phase profiling; while on, each
///     command prints a phase table per kernel it ran)
///   + stats [prom|json]     (dump the process-wide metrics registry)
///   + load graph <name> <path>   (load into the shared registry)
///   + use graph <name>           (switch to a registry-resident graph)
///   + repeat <n> ... end    (the paper's "simple loop structures ... a
///     topic for future consideration"; nestable, script-level only)
///   + workers <n> [fork|threads] [threads=k] | workers off
///     (route components / pagerank / bfs / bc through n loopback worker
///     processes via the dist substrate, docs/DISTRIBUTED.md, each running
///     block-local sweeps on k OpenMP threads; results are identical to
///     single-process runs — betweenness bit-identically so)
///   + partition info <n>    (the 1-D blocks `workers n` would use:
///     per-block vertex/entry counts, edge-cut fraction, imbalance)

#include <iosfwd>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "script/graph_provider.hpp"
#include "script/script_parser.hpp"

namespace graphct::script {

/// Interpreter options.
struct InterpreterOptions {
  graphct::ToolkitOptions toolkit;

  /// Print kernel wall times after each command.
  bool timings = false;

  /// Resolves `load graph` / `use graph` names; those commands error when
  /// null. Not owned; must outlive the interpreter.
  GraphProvider* provider = nullptr;
};

/// Executes parsed commands against a graph stack.
class Interpreter {
 public:
  /// `out` receives screen output; it must outlive the interpreter.
  explicit Interpreter(std::ostream& out, InterpreterOptions opts = {});
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Run one command. Throws graphct::Error (annotated with the line) on
  /// unknown commands, bad arity, or kernel failures.
  void execute(const Command& cmd);

  /// Parse and run a whole script.
  void run(std::string_view script_text);

  /// Run a script file from disk.
  void run_file(const std::string& path);

  /// Depth of the graph stack (current graph included); 0 before any read.
  [[nodiscard]] std::size_t stack_depth() const;

  /// The current toolkit (throws if no graph is loaded).
  graphct::Toolkit& current();

  /// The current toolkit, or nullptr before any read (the server's job
  /// accounting samples cache stats around each command with this).
  [[nodiscard]] graphct::Toolkit* current_or_null();

  /// Serialization key for the current graph: "graph:<name>" when the
  /// current graph is provider-shared, "" for session-private graphs. The
  /// server's job queue runs jobs with equal non-empty keys one at a time.
  [[nodiscard]] std::string current_graph_key() const;

  /// Thread count requested by the last `threads N` command (0 = runtime
  /// default); the server applies it per job.
  [[nodiscard]] int requested_threads() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace graphct::script
