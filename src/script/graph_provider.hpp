#pragma once

/// \file graph_provider.hpp
/// Named-graph resolution interface for the script interpreter.
///
/// The interpreter's `load graph <name> <path>` and `use graph <name>`
/// commands resolve through this interface rather than a concrete registry,
/// keeping the script layer independent of the server subsystem that
/// implements sharing (src/server/graph_registry.hpp). A provider returns
/// shared, read-only Toolkits: many sessions may hold the same instance
/// concurrently, so callers must never mutate a provider-owned Toolkit.

#include <memory>
#include <string>

#include "core/toolkit.hpp"
#include "util/error.hpp"

namespace graphct::script {

/// Resolves graph names to shared Toolkits (implemented by the server's
/// GraphRegistry). Implementations must be thread-safe.
class GraphProvider {
 public:
  virtual ~GraphProvider() = default;

  /// Load `path` under `name`, or return the already-resident graph when
  /// the name is taken (load-once semantics). Throws graphct::Error on I/O
  /// failure.
  virtual std::shared_ptr<Toolkit> load_graph(const std::string& name,
                                              const std::string& path) = 0;

  /// As load_graph(), but opening `path` as a packed (block-compressed,
  /// mmap-backed) graph — the script's `load packed <name> <path>`. The
  /// default refuses; registries that serve packed graphs override it.
  virtual std::shared_ptr<Toolkit> load_packed_graph(const std::string& name,
                                                     const std::string& path) {
    (void)name;
    (void)path;
    throw Error("load packed: this session's graph provider does not "
                "support packed graphs");
  }

  /// The resident graph named `name`, or nullptr when absent.
  virtual std::shared_ptr<Toolkit> get_graph(const std::string& name) = 0;
};

}  // namespace graphct::script
