#pragma once

/// \file script_parser.hpp
/// Parser for the GraphCT analyst scripting language (paper §IV-B).
///
/// Scripts are line-oriented: the first line typically reads a graph from
/// disk and each following line invokes one kernel. A trailing `=> <file>`
/// redirects a kernel's per-vertex output to a file. `#` starts a comment.
/// The example from the paper parses as-is:
///
///   read dimacs patents.txt
///   print diameter 10
///   save graph
///   extract component 1 => comp1.bin
///   print degrees
///   kcentrality 1 256 => k1scores.txt
///   kcentrality 2 256 => k2scores.txt
///   restore graph
///   extract component 2
///   print degrees

#include <string>
#include <string_view>
#include <vector>

namespace graphct::script {

/// One parsed script line.
struct Command {
  std::vector<std::string> tokens;  ///< whitespace-split words before `=>`
  std::string redirect;             ///< output file after `=>`, or empty
  int line = 0;                     ///< 1-based source line (for errors)

  [[nodiscard]] bool has_redirect() const { return !redirect.empty(); }
};

/// Parse a whole script. Blank lines and comments are skipped. Throws
/// graphct::Error (with line numbers) on malformed lines, e.g. a dangling
/// `=>` with no target or multiple `=>` on one line.
std::vector<Command> parse_script(std::string_view text);

/// Parse a single line (no trailing newline); returns a Command with no
/// tokens for blank/comment lines.
Command parse_line(std::string_view line, int lineno);

}  // namespace graphct::script
