#pragma once

/// \file graph_view.hpp
/// GraphView — the representation-polymorphism seam between kernels and
/// graph storage.
///
/// Kernels (BFS, components, PageRank, BC, closeness, k-BC, diameter,
/// degree) take `const GraphView&` instead of `const CsrGraph&`. A view is
/// two pointers and a few cached scalars:
///
///   * DRAM-resident CsrGraph, or a packed store with the pass-through
///     codec: `adj_` is the raw adjacency base, and neighbors(v) is the
///     same pointer arithmetic CsrGraph does — no virtual call, no branch
///     miss in steady state, nothing to pay for not using compression.
///   * packed store with the varint codec: `adj_` is null and neighbors(v)
///     goes through the store's per-thread decoded-block cache.
///
/// Both constructors are implicit on purpose: every existing call site
/// passing a CsrGraph keeps compiling, and tests exercise kernels over
/// either backend by changing only what they pass in.
///
/// Spans returned by neighbors() on the decode path stay valid until the
/// calling thread touches two further blocks (BlockCache::kMinResident);
/// kernels holding at most one span at a time — all of ours — are safe.

#include <cstdint>
#include <span>

#include "graph/csr_graph.hpp"
#include "storage/graph_store.hpp"

namespace graphct {

class GraphView {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, see above.
  GraphView(const CsrGraph& g)
      : mem_(&g),
        offsets_(g.offsets().data()),
        adj_(g.adjacency().data()),
        num_vertices_(g.num_vertices()),
        num_entries_(g.num_adjacency_entries()),
        num_self_loops_(g.num_self_loops()),
        directed_(g.directed()),
        sorted_(g.sorted_adjacency()) {}

  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, see above.
  GraphView(const storage::GraphStore& s)
      : store_(&s),
        offsets_(s.offsets().data()),
        adj_(s.raw_adjacency()),
        num_vertices_(s.num_vertices()),
        num_entries_(s.num_adjacency_entries()),
        num_self_loops_(s.num_self_loops()),
        directed_(s.directed()),
        sorted_(s.sorted_adjacency()) {}

  [[nodiscard]] vid num_vertices() const { return num_vertices_; }
  [[nodiscard]] eid num_adjacency_entries() const { return num_entries_; }
  [[nodiscard]] eid num_edges() const {
    return directed_ ? num_entries_ : (num_entries_ + num_self_loops_) / 2;
  }
  [[nodiscard]] vid num_self_loops() const { return num_self_loops_; }
  [[nodiscard]] bool directed() const { return directed_; }
  [[nodiscard]] bool sorted_adjacency() const { return sorted_; }

  [[nodiscard]] vid degree(vid v) const {
    return static_cast<vid>(offsets_[v + 1] - offsets_[v]);
  }

  [[nodiscard]] std::span<const vid> neighbors(vid v) const {
    const eid lo = offsets_[v];
    const eid hi = offsets_[v + 1];
    if (adj_ != nullptr) [[likely]] {
      return {adj_ + lo, static_cast<std::size_t>(hi - lo)};
    }
    if (store_ != nullptr) return store_->neighbors(v);
    // Memory-backed with zero adjacency entries: the vector's data() is
    // null, so adj_ never matched; every vertex has an empty span.
    return {};
  }

  [[nodiscard]] bool has_edge(vid u, vid v) const;

  /// The in-memory graph behind this view, or nullptr if store-backed.
  /// Used by code paths that need CSR internals (reverse, symmetrize,
  /// subgraph surgery) to pick between zero-copy and materialize().
  [[nodiscard]] const CsrGraph* as_csr() const { return mem_; }

  /// The packed store behind this view, or nullptr if memory-backed.
  [[nodiscard]] const storage::GraphStore* store() const { return store_; }

  [[nodiscard]] bool store_backed() const { return store_ != nullptr; }

  /// A DRAM copy of the graph: copies the CSR arrays, or decodes every
  /// block of a packed store. For fallback paths that genuinely need an
  /// in-memory CsrGraph (graph transforms); O(n + m) time and memory.
  [[nodiscard]] CsrGraph materialize() const;

  /// The in-memory graph behind this view, decoding into `scratch` only
  /// when store-backed — the zero-copy variant of materialize() for
  /// callers that already hold a CsrGraph slot.
  [[nodiscard]] const CsrGraph& as_csr_or(CsrGraph& scratch) const {
    if (mem_ != nullptr) return *mem_;
    scratch = materialize();
    return scratch;
  }

 private:
  const CsrGraph* mem_ = nullptr;
  const storage::GraphStore* store_ = nullptr;
  const eid* offsets_ = nullptr;
  const vid* adj_ = nullptr;  ///< non-null for DRAM CSR and pass-through codec
  vid num_vertices_ = 0;
  eid num_entries_ = 0;
  vid num_self_loops_ = 0;
  bool directed_ = false;
  bool sorted_ = false;
};

}  // namespace graphct
