#include "storage/graph_view.hpp"

#include <algorithm>

namespace graphct {

bool GraphView::has_edge(vid u, vid v) const {
  if (u < 0 || u >= num_vertices_) return false;
  const std::span<const vid> nbrs = neighbors(u);
  if (sorted_) {
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
  }
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

CsrGraph GraphView::materialize() const {
  if (mem_ != nullptr) return *mem_;
  return store_->materialize();
}

}  // namespace graphct
