#include "storage/graph_store.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>

#include "obs/metrics.hpp"
#include "storage/block_codec.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace graphct::storage {

namespace {

std::uint64_t next_store_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

GraphStore::GraphStore(const std::string& path, const StoreOptions& opts)
    : file_(path), opts_(opts), store_id_(next_store_id()) {
  GCT_CHECK(file_.size() >= sizeof(PackedHeader) + sizeof(PackedTrailer),
            "packed graph '" + path + "': file too small to hold a header (" +
                std::to_string(file_.size()) + " bytes) — truncated?");
  header_ = reinterpret_cast<const PackedHeader*>(file_.data());
  GCT_CHECK(std::memcmp(header_->magic, kPackedMagic, 8) == 0,
            "packed graph '" + path +
                "': bad magic — not a packed graph file");
  GCT_CHECK(header_->version == kPackedVersion,
            "packed graph '" + path + "': unsupported format version " +
                std::to_string(header_->version) + " (expected " +
                std::to_string(kPackedVersion) + ")");
  GCT_CHECK(header_->codec == static_cast<std::uint32_t>(Codec::kNone) ||
                header_->codec == static_cast<std::uint32_t>(Codec::kVarint),
            "packed graph '" + path + "': unknown codec id " +
                std::to_string(header_->codec));
  GCT_CHECK(header_->file_bytes == file_.size(),
            "packed graph '" + path + "': size mismatch — header says " +
                std::to_string(header_->file_bytes) + " bytes, file has " +
                std::to_string(file_.size()) + " (truncated or corrupt)");
  GCT_CHECK(header_->num_vertices >= 0 && header_->num_entries >= 0 &&
                header_->num_blocks >= 0,
            "packed graph '" + path + "': negative counts in header");

  const std::uint64_t n = static_cast<std::uint64_t>(header_->num_vertices);
  const std::uint64_t offsets_bytes = (n + 1) * sizeof(eid);
  const std::uint64_t index_bytes =
      (static_cast<std::uint64_t>(header_->num_blocks) + 1) *
      sizeof(BlockIndexEntry);
  GCT_CHECK(header_->offsets_off == sizeof(PackedHeader) &&
                header_->index_off == header_->offsets_off + offsets_bytes &&
                header_->payload_off == header_->index_off + index_bytes &&
                header_->payload_off + header_->payload_bytes +
                        sizeof(PackedTrailer) ==
                    header_->file_bytes,
            "packed graph '" + path + "': inconsistent section offsets");

  const auto* trailer = reinterpret_cast<const PackedTrailer*>(
      file_.data() + file_.size() - sizeof(PackedTrailer));
  GCT_CHECK(std::memcmp(trailer->magic, kPackedEndMagic, 8) == 0,
            "packed graph '" + path +
                "': missing end marker — file truncated?");
  if (opts_.verify_checksum) {
    const std::uint64_t got =
        fnv1a64(file_.data(), file_.size() - sizeof(PackedTrailer));
    GCT_CHECK(got == trailer->checksum,
              "packed graph '" + path + "': checksum mismatch (stored " +
                  std::to_string(trailer->checksum) + ", computed " +
                  std::to_string(got) + ") — file corrupt");
  }

  offsets_ = reinterpret_cast<const eid*>(file_.data() + header_->offsets_off);
  index_ = reinterpret_cast<const BlockIndexEntry*>(file_.data() +
                                                    header_->index_off);
  payload_ = file_.data() + header_->payload_off;

  // Offsets sanity: monotone, spanning exactly num_entries. Linear, but a
  // single sequential pass over the (uncompressed) offsets section; decode
  // trusts these bounds afterwards.
  GCT_CHECK(offsets_[0] == 0, "packed graph '" + path +
                                  "': offsets must start at 0");
  for (std::uint64_t v = 0; v < n; ++v) {
    GCT_CHECK(offsets_[v] <= offsets_[v + 1],
              "packed graph '" + path + "': offsets not monotone at vertex " +
                  std::to_string(v) + " — corrupt file");
  }
  GCT_CHECK(offsets_[n] == header_->num_entries,
            "packed graph '" + path +
                "': offsets do not span num_entries — corrupt file");

  // Block index sanity.
  const std::int64_t nb = header_->num_blocks;
  if (nb > 0) {
    GCT_CHECK(index_[0].first_vertex == 0 && index_[0].byte_offset == 0,
              "packed graph '" + path + "': block index must start at 0");
  }
  for (std::int64_t b = 0; b < nb; ++b) {
    GCT_CHECK(index_[b].first_vertex < index_[b + 1].first_vertex &&
                  index_[b].byte_offset <= index_[b + 1].byte_offset,
              "packed graph '" + path + "': block index not monotone");
  }
  GCT_CHECK(index_[nb].first_vertex == header_->num_vertices &&
                index_[nb].byte_offset == header_->payload_bytes,
            "packed graph '" + path + "': block index sentinel mismatch");

  if (codec() == Codec::kNone) {
    GCT_CHECK(header_->payload_bytes == raw_adjacency_bytes(),
              "packed graph '" + path +
                  "': pass-through payload size mismatch");
    GCT_CHECK(header_->payload_off % alignof(vid) == 0,
              "packed graph '" + path + "': misaligned raw payload");
    raw_adjacency_ = reinterpret_cast<const vid*>(payload_);
  } else {
    file_.advise_random();
  }

  auto& reg = obs::registry();
  m_blocks_decoded_ = &reg.counter("gct_storage_blocks_decoded_total");
  m_decoded_bytes_ = &reg.counter("gct_storage_decoded_bytes_total");
  m_payload_bytes_read_ = &reg.counter("gct_storage_payload_bytes_read_total");
  m_cache_hits_ = &reg.counter("gct_storage_block_cache_hits_total");
  m_cache_misses_ = &reg.counter("gct_storage_block_cache_misses_total");
  m_cache_evictions_ = &reg.counter("gct_storage_block_cache_evictions_total");
}

GraphStore::~GraphStore() = default;

bool GraphStore::sniff(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kPackedMagic, 8) == 0;
}

std::int64_t GraphStore::block_of(vid v) const {
  // Largest block whose first_vertex <= v: upper_bound over the index
  // (sentinel included) then step back one.
  const BlockIndexEntry* begin = index_;
  const BlockIndexEntry* end = index_ + header_->num_blocks + 1;
  const BlockIndexEntry* it = std::upper_bound(
      begin, end, v,
      [](vid x, const BlockIndexEntry& e) { return x < e.first_vertex; });
  return static_cast<std::int64_t>(it - begin) - 1;
}

BlockCache& GraphStore::local_cache() const {
  struct Binding {
    std::uint64_t store_id;
    BlockCache* cache;
  };
  // One slot vector per thread. Store ids are never reused, so a binding
  // left behind by a destroyed store can never match again; the vector
  // stays as long as the thread but grows only by live stores touched.
  static thread_local std::vector<Binding> bindings;
  for (const Binding& b : bindings) {
    if (b.store_id == store_id_) return *b.cache;
  }
  BlockCache* cache = nullptr;
  {
    std::lock_guard<std::mutex> lock(caches_mu_);
    caches_.push_back(std::make_unique<BlockCache>(opts_.cache_budget_bytes));
    cache = caches_.back().get();
  }
  bindings.push_back(Binding{store_id_, cache});
  return *cache;
}

const BlockCache::Decoded& GraphStore::decode_block_into(
    BlockCache& cache, std::int64_t block) const {
  const BlockIndexEntry& e = index_[block];
  const BlockIndexEntry& next = index_[block + 1];
  const vid first_vertex = static_cast<vid>(e.first_vertex);
  const vid end_vertex = static_cast<vid>(next.first_vertex);
  const eid first_entry = offsets_[first_vertex];
  const eid end_entry = offsets_[end_vertex];
  const std::size_t encoded = next.byte_offset - e.byte_offset;

  BlockCache::Decoded d;
  d.block = block;
  d.first_vertex = first_vertex;
  d.end_vertex = end_vertex;
  d.first_entry = first_entry;
  d.values.resize(static_cast<std::size_t>(end_entry - first_entry));
  decode_block(codec(), offsets(), first_vertex, end_vertex - first_vertex,
               {payload_ + e.byte_offset, encoded},
               {d.values.data(), d.values.size()});

  m_blocks_decoded_->add(1);
  m_decoded_bytes_->add(static_cast<std::int64_t>(d.values.size() * sizeof(vid)));
  m_payload_bytes_read_->add(static_cast<std::int64_t>(encoded));
  return cache.insert(std::move(d));
}

std::span<const vid> GraphStore::cached_neighbors(vid v, eid lo,
                                                  eid hi) const {
  BlockCache& cache = local_cache();
  const BlockCache::Decoded* d = cache.mru();
  if (d != nullptr && v >= d->first_vertex && v < d->end_vertex) {
    cache.note_fast_hit();
    m_cache_hits_->add(1);
  } else {
    const std::int64_t block = block_of(v);
    d = cache.find(block);
    if (d != nullptr) {
      m_cache_hits_->add(1);
    } else {
      m_cache_misses_->add(1);
      const auto evictions_before = cache.stats().evictions;
      d = &decode_block_into(cache, block);
      const auto evicted = cache.stats().evictions - evictions_before;
      if (evicted > 0) m_cache_evictions_->add(evicted);
    }
  }
  return {d->values.data() + static_cast<std::size_t>(lo - d->first_entry),
          static_cast<std::size_t>(hi - lo)};
}

CsrGraph GraphStore::materialize() const {
  std::vector<eid> off(offsets().begin(), offsets().end());
  std::vector<vid> adj(static_cast<std::size_t>(num_adjacency_entries()));
  if (raw_adjacency_ != nullptr) {
    std::memcpy(adj.data(), raw_adjacency_, adj.size() * sizeof(vid));
  } else {
    for (std::int64_t b = 0; b < num_blocks(); ++b) {
      const BlockIndexEntry& e = index_[b];
      const BlockIndexEntry& next = index_[b + 1];
      const vid fv = static_cast<vid>(e.first_vertex);
      const vid ev = static_cast<vid>(next.first_vertex);
      const eid lo = offsets_[fv];
      const eid hi = offsets_[ev];
      decode_block(codec(), offsets(), fv, ev - fv,
                   {payload_ + e.byte_offset, next.byte_offset - e.byte_offset},
                   {adj.data() + lo, static_cast<std::size_t>(hi - lo)});
    }
  }
  return CsrGraph(std::move(off), std::move(adj), directed(),
                  num_self_loops(), sorted_adjacency());
}

BlockCache::Stats GraphStore::cache_stats() const {
  BlockCache::Stats total;
  std::lock_guard<std::mutex> lock(caches_mu_);
  for (const auto& c : caches_) {
    const BlockCache::Stats& s = c->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.decoded_bytes += s.decoded_bytes;
    total.resident_bytes += s.resident_bytes;
  }
  return total;
}

}  // namespace graphct::storage
