#include "storage/block_cache.hpp"

namespace graphct::storage {

const BlockCache::Decoded& BlockCache::insert(Decoded d) {
  const std::uint64_t bytes = d.values.size() * sizeof(vid);
  d.last_use = ++tick_;
  auto [it, inserted] = blocks_.insert_or_assign(d.block, std::move(d));
  if (inserted) {
    stats_.resident_bytes += bytes;
  }
  stats_.decoded_bytes += bytes;
  mru_ = &it->second;

  // Evict least-recently-used blocks until back under budget. The resident
  // floor keeps the two newest blocks alive so previously returned spans
  // survive one further block switch. A linear LRU scan is fine here:
  // resident counts are budget / block size (tens to hundreds), and the
  // scan only runs on miss-and-over-budget, which already paid a decode.
  while (stats_.resident_bytes > budget_ && blocks_.size() > kMinResident) {
    auto victim = blocks_.end();
    for (auto jt = blocks_.begin(); jt != blocks_.end(); ++jt) {
      if (victim == blocks_.end() ||
          jt->second.last_use < victim->second.last_use) {
        victim = jt;
      }
    }
    if (victim == blocks_.end() || &victim->second == mru_) break;
    stats_.resident_bytes -= victim->second.values.size() * sizeof(vid);
    ++stats_.evictions;
    blocks_.erase(victim);
  }
  return *mru_;
}

}  // namespace graphct::storage
