#pragma once

/// \file graph_store.hpp
/// Mmap-backed packed graph store: the out-of-core CSR representation.
///
/// A GraphStore maps a packed file (see packed_format.hpp) and serves
/// adjacency through the same `degree()` / `neighbors()` shape as CsrGraph,
/// so kernels run over either via GraphView. Offsets and the block index
/// live uncompressed in the mapping; neighbor values decode per block on
/// first touch into a per-thread BlockCache with a byte budget. With the
/// pass-through codec (Codec::kNone) neighbor spans point straight into the
/// mapping and no decode or cache is involved — the zero-cost path for
/// graphs that fit DRAM.
///
/// Thread safety: all accessors are const and safe to call concurrently.
/// Each thread lazily binds its own BlockCache (owned by the store), so the
/// decode path is lock-free after the first touch per thread. This holds up
/// under nested OpenMP regions (coarse BC teams), where omp_get_thread_num()
/// is ambiguous — binding is by thread identity, not OpenMP id.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "storage/block_cache.hpp"
#include "storage/mmap_file.hpp"
#include "storage/packed_format.hpp"

namespace graphct::obs {
class Counter;
}

namespace graphct::storage {

/// Options for opening a packed graph.
struct StoreOptions {
  /// Per-thread decoded-block cache budget. The working set is
  /// budget x threads; keep it well under the raw adjacency size or the
  /// store is just a slow copy of DRAM.
  std::uint64_t cache_budget_bytes = std::uint64_t{64} << 20;

  /// Verify the trailer checksum over the whole file at open (one
  /// sequential pass; pages the file in). Off by default so opening a
  /// multi-DRAM graph stays lazy.
  bool verify_checksum = false;
};

class GraphStore {
 public:
  /// Open a packed file. Throws graphct::Error on a missing file, bad
  /// magic, version/codec mismatch, size mismatch, or (when requested)
  /// checksum failure.
  explicit GraphStore(const std::string& path, const StoreOptions& opts = {});

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;
  GraphStore(GraphStore&&) = delete;
  GraphStore& operator=(GraphStore&&) = delete;
  ~GraphStore();

  // CsrGraph-shaped properties.
  [[nodiscard]] vid num_vertices() const { return header_->num_vertices; }
  [[nodiscard]] eid num_adjacency_entries() const {
    return header_->num_entries;
  }
  [[nodiscard]] eid num_edges() const {
    return directed() ? header_->num_entries
                      : (header_->num_entries + header_->num_self_loops) / 2;
  }
  [[nodiscard]] bool directed() const {
    return (header_->flags & kPackedFlagDirected) != 0;
  }
  [[nodiscard]] vid num_self_loops() const { return header_->num_self_loops; }
  [[nodiscard]] bool sorted_adjacency() const {
    return (header_->flags & kPackedFlagSorted) != 0;
  }
  [[nodiscard]] std::span<const eid> offsets() const {
    return {offsets_, static_cast<std::size_t>(num_vertices()) + 1};
  }
  [[nodiscard]] vid degree(vid v) const {
    return static_cast<vid>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v. Pass-through codec: a span into the mapping, as cheap
  /// as CsrGraph. Varint codec: a span into this thread's decoded-block
  /// cache, valid until two further blocks are touched on this thread.
  [[nodiscard]] std::span<const vid> neighbors(vid v) const {
    const eid lo = offsets_[v];
    const eid hi = offsets_[v + 1];
    if (raw_adjacency_ != nullptr) {
      return {raw_adjacency_ + lo, static_cast<std::size_t>(hi - lo)};
    }
    return cached_neighbors(v, lo, hi);
  }

  /// Non-null iff the pass-through codec is active (adjacency mmap'd raw).
  [[nodiscard]] const vid* raw_adjacency() const { return raw_adjacency_; }

  // Storage properties.
  [[nodiscard]] Codec codec() const {
    return static_cast<Codec>(header_->codec);
  }
  [[nodiscard]] std::int64_t num_blocks() const { return header_->num_blocks; }
  [[nodiscard]] std::uint64_t block_target_bytes() const {
    return header_->block_target_bytes;
  }
  [[nodiscard]] std::uint64_t packed_payload_bytes() const {
    return header_->payload_bytes;
  }
  [[nodiscard]] std::uint64_t raw_adjacency_bytes() const {
    return static_cast<std::uint64_t>(header_->num_entries) * sizeof(vid);
  }
  [[nodiscard]] std::uint64_t file_bytes() const { return header_->file_bytes; }
  [[nodiscard]] double compression_ratio() const {
    return header_->payload_bytes == 0
               ? 1.0
               : static_cast<double>(raw_adjacency_bytes()) /
                     static_cast<double>(header_->payload_bytes);
  }
  [[nodiscard]] std::uint64_t cache_budget_bytes() const {
    return opts_.cache_budget_bytes;
  }
  [[nodiscard]] const std::string& path() const { return file_.path(); }

  /// Decode the whole graph back into an in-memory CsrGraph.
  [[nodiscard]] CsrGraph materialize() const;

  /// Sum of all per-thread cache stats (snapshot; other threads may be
  /// decoding concurrently).
  [[nodiscard]] BlockCache::Stats cache_stats() const;

  /// True if the file at path begins with the packed magic.
  static bool sniff(const std::string& path);

 private:
  [[nodiscard]] std::span<const vid> cached_neighbors(vid v, eid lo,
                                                      eid hi) const;
  [[nodiscard]] BlockCache& local_cache() const;
  [[nodiscard]] std::int64_t block_of(vid v) const;
  const BlockCache::Decoded& decode_block_into(BlockCache& cache,
                                               std::int64_t block) const;

  MmapFile file_;
  StoreOptions opts_;
  const PackedHeader* header_ = nullptr;
  const eid* offsets_ = nullptr;
  const BlockIndexEntry* index_ = nullptr;
  const std::uint8_t* payload_ = nullptr;
  const vid* raw_adjacency_ = nullptr;  ///< non-null for Codec::kNone

  /// Unique per-store id for thread-local cache binding; a destroyed
  /// store's id is never reused, so stale bindings can never resolve.
  std::uint64_t store_id_ = 0;

  mutable std::mutex caches_mu_;
  mutable std::vector<std::unique_ptr<BlockCache>> caches_;

  // Cached obs metric handles (registry references are stable).
  obs::Counter* m_blocks_decoded_ = nullptr;
  obs::Counter* m_decoded_bytes_ = nullptr;
  obs::Counter* m_payload_bytes_read_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_cache_evictions_ = nullptr;
};

}  // namespace graphct::storage
