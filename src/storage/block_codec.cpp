#include "storage/block_codec.hpp"

#include <cstring>
#include <limits>

#include "storage/varint.hpp"
#include "util/error.hpp"

namespace graphct::storage {

namespace {

/// Gaps are encoded as unsigned deltas; the first neighbor is encoded as
/// its raw (non-negative) id. Sorted lists make every delta non-negative,
/// so no zig-zag step is needed — ids up to INT64_MAX round-trip exactly.
void encode_varint_list(std::span<const vid> list,
                        std::vector<std::uint8_t>& out) {
  std::uint8_t buf[kMaxVarintBytes];
  vid prev = 0;
  bool first = true;
  for (vid v : list) {
    GCT_CHECK(v >= 0, "encode_block: negative vertex id in adjacency");
    std::uint64_t value;
    if (first) {
      value = static_cast<std::uint64_t>(v);
    } else {
      GCT_CHECK(v >= prev,
                "encode_block: varint codec requires sorted adjacency");
      value = static_cast<std::uint64_t>(v) - static_cast<std::uint64_t>(prev);
    }
    std::uint8_t* end = encode_varint(value, buf);
    out.insert(out.end(), buf, end);
    prev = v;
    first = false;
  }
}

}  // namespace

void encode_block(Codec codec, std::span<const eid> offsets, vid first_vertex,
                  vid nv, std::span<const vid> adjacency,
                  std::vector<std::uint8_t>& out) {
  const eid first_entry = offsets[static_cast<std::size_t>(first_vertex)];
  const eid last_entry = offsets[static_cast<std::size_t>(first_vertex + nv)];
  const auto entries = static_cast<std::size_t>(last_entry - first_entry);
  switch (codec) {
    case Codec::kNone: {
      const std::size_t old = out.size();
      out.resize(old + entries * sizeof(vid));
      std::memcpy(out.data() + old,
                  adjacency.data() + static_cast<std::size_t>(first_entry),
                  entries * sizeof(vid));
      return;
    }
    case Codec::kVarint: {
      for (vid v = first_vertex; v < first_vertex + nv; ++v) {
        const eid lo = offsets[static_cast<std::size_t>(v)];
        const eid hi = offsets[static_cast<std::size_t>(v) + 1];
        encode_varint_list(
            adjacency.subspan(static_cast<std::size_t>(lo),
                              static_cast<std::size_t>(hi - lo)),
            out);
      }
      return;
    }
  }
  throw Error("encode_block: unknown codec");
}

void decode_block(Codec codec, std::span<const eid> offsets, vid first_vertex,
                  vid nv, std::span<const std::uint8_t> bytes,
                  std::span<vid> out) {
  const eid first_entry = offsets[static_cast<std::size_t>(first_vertex)];
  const eid last_entry = offsets[static_cast<std::size_t>(first_vertex + nv)];
  const auto entries = static_cast<std::size_t>(last_entry - first_entry);
  GCT_CHECK(out.size() == entries,
            "decode_block: output span does not match block entry count");
  switch (codec) {
    case Codec::kNone: {
      GCT_CHECK(bytes.size() == entries * sizeof(vid),
                "decode_block: raw block size mismatch (corrupt file?)");
      std::memcpy(out.data(), bytes.data(), bytes.size());
      return;
    }
    case Codec::kVarint: {
      const std::uint8_t* p = bytes.data();
      const std::uint8_t* end = bytes.data() + bytes.size();
      std::size_t k = 0;
      for (vid v = first_vertex; v < first_vertex + nv; ++v) {
        const eid lo = offsets[static_cast<std::size_t>(v)];
        const eid hi = offsets[static_cast<std::size_t>(v) + 1];
        std::uint64_t acc = 0;
        for (eid i = lo; i < hi; ++i) {
          std::uint64_t value = 0;
          p = decode_varint(p, end, value);
          GCT_CHECK(p != nullptr,
                    "decode_block: truncated or malformed varint payload");
          acc = (i == lo) ? value : acc + value;
          GCT_CHECK(acc <= static_cast<std::uint64_t>(
                               std::numeric_limits<vid>::max()),
                    "decode_block: vertex id overflows 64-bit signed range");
          out[k++] = static_cast<vid>(acc);
        }
      }
      GCT_CHECK(p == end, "decode_block: trailing bytes after block payload");
      return;
    }
  }
  throw Error("decode_block: unknown codec");
}

std::size_t encoded_list_size(Codec codec, std::span<const vid> list) {
  switch (codec) {
    case Codec::kNone:
      return list.size() * sizeof(vid);
    case Codec::kVarint: {
      std::size_t n = 0;
      vid prev = 0;
      bool first = true;
      for (vid v : list) {
        n += varint_size(first ? static_cast<std::uint64_t>(v)
                               : static_cast<std::uint64_t>(v) -
                                     static_cast<std::uint64_t>(prev));
        prev = v;
        first = false;
      }
      return n;
    }
  }
  throw Error("encoded_list_size: unknown codec");
}

}  // namespace graphct::storage
