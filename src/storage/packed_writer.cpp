#include "storage/packed_writer.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "obs/trace.hpp"
#include "storage/block_codec.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace graphct::storage {

PackResult pack_graph(const CsrGraph& g, const std::string& path,
                      const PackOptions& opts) {
  GCT_SPAN("storage.pack");
  GCT_CHECK(opts.codec == Codec::kNone || g.sorted_adjacency(),
            "pack_graph: varint codec requires sorted adjacency "
            "(call sort_adjacency() first)");
  GCT_CHECK(opts.block_target_bytes > 0,
            "pack_graph: block_target_bytes must be positive");

  const vid n = g.num_vertices();
  const std::span<const eid> offsets = g.offsets();
  const std::span<const vid> adjacency = g.adjacency();

  // Partition vertices into blocks by exact encoded size, then encode.
  // Whole vertices per block, at least one vertex per block; a run of
  // zero-degree vertices costs nothing and folds into the current block.
  std::vector<BlockIndexEntry> index;
  std::vector<std::uint8_t> payload;
  payload.reserve(static_cast<std::size_t>(
      opts.codec == Codec::kNone
          ? g.num_adjacency_entries() * static_cast<eid>(sizeof(vid))
          : g.num_adjacency_entries() * 3));
  {
    vid v = 0;
    while (v < n) {
      BlockIndexEntry e;
      e.first_vertex = v;
      e.byte_offset = payload.size();
      index.push_back(e);
      std::uint64_t block_bytes = 0;
      vid first = v;
      while (v < n) {
        const std::size_t list_bytes =
            encoded_list_size(opts.codec, g.neighbors(v));
        if (v > first && block_bytes + list_bytes > opts.block_target_bytes) {
          break;
        }
        block_bytes += list_bytes;
        ++v;
        if (block_bytes >= opts.block_target_bytes) break;
      }
      encode_block(opts.codec, offsets, first, v - first, adjacency, payload);
    }
  }
  // Pass-through blocks must stay 8-aligned: they are, because every raw
  // list is a multiple of sizeof(vid) bytes and the payload section starts
  // aligned (header and index are multiples of 8).
  const auto num_blocks = static_cast<std::int64_t>(index.size());
  BlockIndexEntry sentinel;
  sentinel.first_vertex = n;
  sentinel.byte_offset = payload.size();
  index.push_back(sentinel);

  PackedHeader h{};
  std::memcpy(h.magic, kPackedMagic, 8);
  h.version = kPackedVersion;
  h.codec = static_cast<std::uint32_t>(opts.codec);
  h.flags = (g.directed() ? kPackedFlagDirected : 0u) |
            (g.sorted_adjacency() ? kPackedFlagSorted : 0u);
  h.num_vertices = n;
  h.num_entries = g.num_adjacency_entries();
  h.num_self_loops = g.num_self_loops();
  h.num_blocks = num_blocks;
  h.block_target_bytes = opts.block_target_bytes;
  h.offsets_off = sizeof(PackedHeader);
  h.index_off = h.offsets_off + (static_cast<std::uint64_t>(n) + 1) * sizeof(eid);
  h.payload_off = h.index_off + index.size() * sizeof(BlockIndexEntry);
  h.payload_bytes = payload.size();
  h.file_bytes = h.payload_off + h.payload_bytes + sizeof(PackedTrailer);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GCT_CHECK(out.good(), "pack_graph: cannot open '" + path + "' for writing");

  Fnv1a64 sum;
  auto emit = [&](const void* data, std::size_t bytes) {
    sum.update(data, bytes);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
  };
  emit(&h, sizeof(h));
  // The format always stores n+1 offsets; a default-constructed empty
  // graph has no offsets array, so emit the implicit single zero.
  if (offsets.empty()) {
    const eid zero = 0;
    emit(&zero, sizeof zero);
  } else {
    emit(offsets.data(), offsets.size_bytes());
  }
  emit(index.data(), index.size() * sizeof(BlockIndexEntry));
  emit(payload.data(), payload.size());

  PackedTrailer t{};
  t.checksum = sum.digest();
  std::memcpy(t.magic, kPackedEndMagic, 8);
  out.write(reinterpret_cast<const char*>(&t), sizeof(t));
  out.flush();
  GCT_CHECK(out.good(), "pack_graph: write failed for '" + path + "'");

  PackResult r;
  r.num_blocks = num_blocks;
  r.payload_bytes = h.payload_bytes;
  r.raw_adjacency_bytes =
      static_cast<std::uint64_t>(g.num_adjacency_entries()) * sizeof(vid);
  r.file_bytes = h.file_bytes;
  r.compression_ratio =
      r.payload_bytes == 0 ? 1.0
                           : static_cast<double>(r.raw_adjacency_bytes) /
                                 static_cast<double>(r.payload_bytes);
  return r;
}

}  // namespace graphct::storage
