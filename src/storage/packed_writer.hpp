#pragma once

/// \file packed_writer.hpp
/// Write a CsrGraph to the packed on-disk format (see packed_format.hpp).

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"
#include "storage/packed_format.hpp"

namespace graphct::storage {

/// Options for pack_graph().
struct PackOptions {
  Codec codec = Codec::kVarint;

  /// Target encoded bytes per block. Blocks hold whole vertices, so a hub
  /// whose list alone exceeds the target gets a block to itself (and the
  /// block runs over target). Smaller blocks mean finer-grained decode and
  /// a larger index; 64 KiB is a good default for social-network degree
  /// distributions.
  std::uint64_t block_target_bytes = std::uint64_t{64} << 10;
};

/// What pack_graph() produced.
struct PackResult {
  std::int64_t num_blocks = 0;
  std::uint64_t payload_bytes = 0;        ///< encoded adjacency bytes
  std::uint64_t raw_adjacency_bytes = 0;  ///< entries * sizeof(vid)
  std::uint64_t file_bytes = 0;
  double compression_ratio = 0.0;  ///< raw / payload (1.0 for empty)
};

/// Pack g to path. The varint codec requires sorted adjacency (delta gaps
/// must be non-negative) — Toolkit sorts on load; call
/// CsrGraph::sort_adjacency() first for hand-built graphs. Throws
/// graphct::Error on I/O failure or unsorted input under Codec::kVarint.
PackResult pack_graph(const CsrGraph& g, const std::string& path,
                      const PackOptions& opts = {});

}  // namespace graphct::storage
