#pragma once

/// \file mmap_file.hpp
/// Read-only memory-mapped file, RAII. The packed graph store keeps the
/// whole file mapped and lets the page cache decide residency — the point
/// of the format is that traversal touches only the blocks it decodes.

#include <cstddef>
#include <cstdint>
#include <string>

namespace graphct::storage {

class MmapFile {
 public:
  MmapFile() = default;

  /// Map path read-only. Throws graphct::Error on open/stat/map failure.
  explicit MmapFile(const std::string& path);

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  ~MmapFile();

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Advise the kernel that access will be random (block decode pattern).
  void advise_random() const;

 private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace graphct::storage
