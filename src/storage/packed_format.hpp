#pragma once

/// \file packed_format.hpp
/// On-disk layout of the packed (block-compressed) CSR graph format —
/// the out-of-core representation behind storage::GraphStore.
///
/// File layout (all integers little-endian, sections 8-byte aligned):
///
///   PackedHeader                       fixed-size, magic "GCTPACK1"
///   eid offsets[num_vertices + 1]      raw CSR offsets, mmap'd in place
///   BlockIndexEntry index[num_blocks+1] uncompressed block index
///   uint8_t payload[payload_bytes]     encoded adjacency blocks
///   PackedTrailer                      FNV-1a checksum + end magic
///
/// Each block covers a contiguous run of whole vertices; the index entry
/// gives the first vertex and the payload byte offset of each block, with a
/// sentinel entry {num_vertices, payload_bytes} closing the last block.
/// Offsets stay uncompressed so degree() and entry positions never decode;
/// only neighbor values are encoded. The trailer checksum covers every byte
/// of the file before the trailer, sharing the header/trailer discipline
/// with the v2 in-memory binary format (graph/io_binary).

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace graphct::storage {

/// Adjacency encoding for packed blocks.
enum class Codec : std::uint32_t {
  /// Raw 64-bit neighbor ids, 8-byte aligned — the no-op pass-through
  /// codec. Blocks mmap directly as spans; traversal pays nothing over
  /// DRAM-resident CSR.
  kNone = 0,

  /// Delta-gap + LEB128 varint over sorted adjacency: per vertex, the
  /// first neighbor as a varint, then successive non-negative gaps.
  kVarint = 1,
};

inline constexpr char kPackedMagic[8] = {'G', 'C', 'T', 'P', 'A', 'C', 'K', '1'};
inline constexpr char kPackedEndMagic[8] = {'G', 'C', 'T', 'P', 'E', 'N', 'D', '1'};
inline constexpr std::uint32_t kPackedVersion = 1;

/// Header flags.
inline constexpr std::uint32_t kPackedFlagDirected = 1u << 0;
inline constexpr std::uint32_t kPackedFlagSorted = 1u << 1;

struct PackedHeader {
  char magic[8];                   ///< kPackedMagic
  std::uint32_t version;           ///< kPackedVersion
  std::uint32_t codec;             ///< Codec enumerator
  std::uint32_t flags;             ///< kPackedFlag* bits
  std::uint32_t reserved;          ///< zero
  std::int64_t num_vertices;
  std::int64_t num_entries;        ///< adjacency entries (directed arcs)
  std::int64_t num_self_loops;
  std::int64_t num_blocks;
  std::uint64_t block_target_bytes;  ///< encoder's per-block payload target
  std::uint64_t offsets_off;         ///< file offset of the offsets array
  std::uint64_t index_off;           ///< file offset of the block index
  std::uint64_t payload_off;         ///< file offset of the encoded blocks
  std::uint64_t payload_bytes;       ///< total encoded payload bytes
  std::uint64_t file_bytes;          ///< total file size, trailer included
};
static_assert(sizeof(PackedHeader) == 104);
static_assert(sizeof(PackedHeader) % 8 == 0);

/// One block: vertices [first_vertex, next.first_vertex) encoded at
/// payload[byte_offset, next.byte_offset). The index has num_blocks + 1
/// entries; the last is the sentinel {num_vertices, payload_bytes}.
struct BlockIndexEntry {
  std::int64_t first_vertex;
  std::uint64_t byte_offset;
};
static_assert(sizeof(BlockIndexEntry) == 16);

struct PackedTrailer {
  std::uint64_t checksum;  ///< FNV-1a 64 over file bytes [0, file_bytes - 16)
  char magic[8];           ///< kPackedEndMagic
};
static_assert(sizeof(PackedTrailer) == 16);

}  // namespace graphct::storage
