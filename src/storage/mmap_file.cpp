#include "storage/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace graphct::storage {

MmapFile::MmapFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  GCT_CHECK(fd >= 0, "mmap open failed for '" + path +
                         "': " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("mmap fstat failed for '" + path + "': " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap(0) is EINVAL; an empty mapping is representable as nullptr.
    ::close(fd);
    return;
  }
  void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);
  GCT_CHECK(p != MAP_FAILED, "mmap failed for '" + path +
                                 "': " + std::strerror(err));
  data_ = static_cast<const std::uint8_t*>(p);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MmapFile::~MmapFile() { reset(); }

void MmapFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

void MmapFile::advise_random() const {
  if (data_ != nullptr) {
    ::madvise(const_cast<std::uint8_t*>(data_), size_, MADV_RANDOM);
  }
}

}  // namespace graphct::storage
