#pragma once

/// \file varint.hpp
/// LEB128 unsigned varints — the byte-oriented encoding under the packed
/// adjacency codec (storage/block_codec). Values up to 64 bits occupy 1-10
/// bytes; small gaps between sorted neighbor ids dominate social-network
/// adjacency, so most gaps fit in one byte.

#include <cstddef>
#include <cstdint>

namespace graphct::storage {

/// Worst-case encoded size of a 64-bit value.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Encoded size of v in bytes.
[[nodiscard]] inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Append v to out (must have >= kMaxVarintBytes writable bytes). Returns
/// one past the last byte written.
inline std::uint8_t* encode_varint(std::uint64_t v, std::uint8_t* out) {
  while (v >= 0x80) {
    *out++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(v);
  return out;
}

/// Decode one varint from [p, end). Returns one past the last byte
/// consumed, or nullptr on truncation / >64-bit overflow (malformed or
/// corrupt input).
inline const std::uint8_t* decode_varint(const std::uint8_t* p,
                                         const std::uint8_t* end,
                                         std::uint64_t& value) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (p != end) {
    const std::uint8_t byte = *p++;
    if (shift == 63 && byte > 1) return nullptr;  // would overflow 64 bits
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      value = v;
      return p;
    }
    shift += 7;
    if (shift > 63) return nullptr;
  }
  return nullptr;  // truncated
}

}  // namespace graphct::storage
