#pragma once

/// \file block_codec.hpp
/// Encode/decode adjacency blocks for the packed format. The API operates
/// on raw offset/value spans (not CsrGraph) so property tests can exercise
/// adversarial shapes — near-INT64_MAX ids, synthetic degree patterns —
/// without building a validated graph around them.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "storage/packed_format.hpp"

namespace graphct::storage {

/// Encode vertices [first_vertex, first_vertex + nv) into out (appended).
/// offsets/adjacency are the global CSR arrays; offsets must be indexable
/// at [first_vertex, first_vertex + nv]. For Codec::kVarint each vertex's
/// list must be sorted ascending (delta gaps must be non-negative). For
/// Codec::kNone the encoding is the raw 8-byte values.
void encode_block(Codec codec, std::span<const eid> offsets, vid first_vertex,
                  vid nv, std::span<const vid> adjacency,
                  std::vector<std::uint8_t>& out);

/// Decode an encoded block back into out, which must be sized to the
/// block's entry count (offsets[first_vertex + nv] - offsets[first_vertex]).
/// Throws graphct::Error on malformed/truncated bytes.
void decode_block(Codec codec, std::span<const eid> offsets, vid first_vertex,
                  vid nv, std::span<const std::uint8_t> bytes,
                  std::span<vid> out);

/// Exact encoded size in bytes of one vertex's list under a codec.
[[nodiscard]] std::size_t encoded_list_size(Codec codec,
                                            std::span<const vid> list);

}  // namespace graphct::storage
