#pragma once

/// \file block_cache.hpp
/// Per-thread decoded-block cache for the packed graph store.
///
/// Each traversal thread owns one BlockCache (created lazily by
/// GraphStore::local_cache), so lookups and evictions take no locks — the
/// same reason the frontier engine keeps per-thread discovery queues. The
/// byte budget bounds the *decoded* bytes resident per thread, mirroring
/// the ResultCache LRU discipline: least-recently-used blocks evict first,
/// but the two most recently used blocks are always retained so that a
/// neighbor span handed to a caller stays valid while it inspects one more
/// span (dual-span patterns like merge intersections).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct::storage {

class BlockCache {
 public:
  /// Blocks are never evicted below this resident count, whatever the
  /// budget — span-validity floor for callers holding two spans.
  static constexpr std::size_t kMinResident = 2;

  explicit BlockCache(std::uint64_t budget_bytes) : budget_(budget_bytes) {}

  struct Decoded {
    std::int64_t block = -1;
    vid first_vertex = 0;
    vid end_vertex = 0;    ///< one past the last vertex in the block
    eid first_entry = 0;   ///< global adjacency index of values[0]
    std::vector<vid> values;
    std::uint64_t last_use = 0;
  };

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::uint64_t decoded_bytes = 0;   ///< lifetime decoded output bytes
    std::uint64_t resident_bytes = 0;  ///< current decoded bytes held
  };

  /// The most recently returned block, or nullptr — callers check this
  /// before paying the map lookup + index binary search.
  [[nodiscard]] const Decoded* mru() const { return mru_; }

  /// Look up a block; bumps recency and the hit counter on success.
  [[nodiscard]] const Decoded* find(std::int64_t block) {
    auto it = blocks_.find(block);
    if (it == blocks_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    it->second.last_use = ++tick_;
    mru_ = &it->second;
    return mru_;
  }

  /// Record an MRU fast-path hit (no map lookup happened).
  void note_fast_hit() { ++stats_.hits; }

  /// Insert a freshly decoded block, evicting LRU blocks beyond the byte
  /// budget (but never below kMinResident resident blocks).
  const Decoded& insert(Decoded d);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t resident_blocks() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t budget_bytes() const { return budget_; }

 private:
  std::unordered_map<std::int64_t, Decoded> blocks_;
  const Decoded* mru_ = nullptr;
  std::uint64_t tick_ = 0;
  std::uint64_t budget_ = 0;
  Stats stats_;
};

}  // namespace graphct::storage
